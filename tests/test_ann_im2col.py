"""Tests for the im2col / col2im machinery shared by ANN and SNN conv layers."""

import numpy as np
import pytest

from repro.ann.im2col import col2im, conv_output_size, im2col


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(28, 3, 1, 1, 28), (28, 5, 1, 0, 24), (32, 2, 2, 0, 16), (7, 3, 2, 1, 4)],
    )
    def test_known_values(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols, out_h, out_w = im2col(x, 3, 3, 1, 1)
        assert (out_h, out_w) == (8, 8)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_identity_kernel_1x1(self):
        x = np.random.default_rng(1).normal(size=(1, 2, 4, 4))
        cols, out_h, out_w = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(out_h * out_w, 2), x[0].transpose(1, 2, 0).reshape(-1, 2))

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        stride, padding = 1, 1
        cols, out_h, out_w = im2col(x, 3, 3, stride, padding)
        fast = (cols @ w.reshape(4, -1).T).reshape(2, out_h, out_w, 4).transpose(0, 3, 1, 2)

        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros_like(fast)
        for n in range(2):
            for oc in range(4):
                for i in range(out_h):
                    for j in range(out_w):
                        patch = padded[n, :, i : i + 3, j : j + 3]
                        naive[n, oc, i, j] = np.sum(patch * w[oc])
        assert np.allclose(fast, naive)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((3, 8, 8)), 3, 3, 1, 0)

    def test_stride_two(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, out_h, out_w = im2col(x, 2, 2, 2, 0)
        assert (out_h, out_w) == (2, 2)
        assert np.array_equal(cols[0], [0, 1, 4, 5])
        assert np.array_equal(cols[3], [10, 11, 14, 15])


class TestCol2Im:
    def test_adjointness(self):
        """<im2col(x), y> must equal <x, col2im(y)> (linear-operator adjoint)."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 7, 7))
        cols, out_h, out_w = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, 3, 3, 2, 1)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_accumulates_overlaps(self):
        x_shape = (1, 1, 3, 3)
        cols, out_h, out_w = im2col(np.ones(x_shape), 2, 2, 1, 0)
        ones_cols = np.ones_like(cols)
        folded = col2im(ones_cols, x_shape, 2, 2, 1, 0)
        # centre pixel is covered by all four 2x2 windows
        assert folded[0, 0, 1, 1] == 4.0
        assert folded[0, 0, 0, 0] == 1.0

    def test_roundtrip_no_overlap(self):
        """With non-overlapping windows col2im(im2col(x)) == x."""
        x = np.random.default_rng(4).normal(size=(2, 2, 4, 4))
        cols, _, _ = im2col(x, 2, 2, 2, 0)
        assert np.allclose(col2im(cols, x.shape, 2, 2, 2, 0), x)
