"""Tests for the threshold dynamics (rate / phase / burst coding, Eqs. 6–10)."""

import numpy as np
import pytest

from repro.snn.thresholds import (
    BurstThreshold,
    ConstantThreshold,
    PhaseThreshold,
    make_threshold,
)


class TestConstantThreshold:
    def test_value(self):
        th = ConstantThreshold(0.5)
        th.reset((1, 3))
        assert float(th.thresholds(0)) == 0.5
        assert float(th.thresholds(100)) == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantThreshold(0.0)

    def test_describe(self):
        assert "0.5" in ConstantThreshold(0.5).describe()


class TestPhaseThreshold:
    def test_oscillation_values(self):
        """Π(t) = 2^-(1+mod(t,k)) exactly as Eq. 6."""
        th = PhaseThreshold(v_th=1.0, period=8)
        assert th.oscillation(0) == 0.5
        assert th.oscillation(1) == 0.25
        assert th.oscillation(7) == pytest.approx(2.0**-8)
        assert th.oscillation(8) == 0.5  # periodic

    def test_threshold_scales_with_v_th(self):
        th = PhaseThreshold(v_th=2.0, period=4)
        assert float(th.thresholds(0)) == 1.0

    def test_period_sum_close_to_v_th(self):
        th = PhaseThreshold(v_th=1.0, period=8)
        total = sum(th.oscillation(t) for t in range(8))
        assert total == pytest.approx(1.0 - 2.0**-8)

    def test_phase_offset(self):
        th = PhaseThreshold(v_th=1.0, period=8, phase_offset=1)
        assert th.oscillation(0) == 0.25

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PhaseThreshold(period=0)
        with pytest.raises(ValueError):
            PhaseThreshold(phase_offset=-1)


class TestBurstThreshold:
    def test_initial_threshold(self):
        th = BurstThreshold(v_th=0.125, beta=2.0)
        th.reset((1, 2))
        assert np.allclose(th.thresholds(0), 0.125)

    def test_requires_reset(self):
        th = BurstThreshold()
        with pytest.raises(RuntimeError):
            th.thresholds(0)
        with pytest.raises(RuntimeError):
            th.update(np.array([[True]]))

    def test_growth_on_consecutive_spikes(self):
        """g doubles after every spike (Eq. 8 with β = 2)."""
        th = BurstThreshold(v_th=0.125, beta=2.0)
        th.reset((1, 1))
        spikes = np.array([[True]])
        th.update(spikes)
        assert np.allclose(th.thresholds(1), 0.25)
        th.update(spikes)
        assert np.allclose(th.thresholds(2), 0.5)

    def test_reset_to_one_after_silence(self):
        th = BurstThreshold(v_th=0.125, beta=2.0)
        th.reset((1, 1))
        th.update(np.array([[True]]))
        th.update(np.array([[False]]))
        assert np.allclose(th.thresholds(2), 0.125)

    def test_per_neuron_independence(self):
        th = BurstThreshold(v_th=0.1, beta=2.0)
        th.reset((1, 2))
        th.update(np.array([[True, False]]))
        thresholds = th.thresholds(1)
        assert thresholds[0, 0] == pytest.approx(0.2)
        assert thresholds[0, 1] == pytest.approx(0.1)

    def test_effective_weight_interpretation(self):
        """ŵ = w·g (Eq. 10): the burst function is exposed for analysis."""
        th = BurstThreshold(v_th=0.125, beta=2.0)
        th.reset((1, 1))
        th.update(np.array([[True]]))
        assert th.burst_function[0, 0] == pytest.approx(2.0)

    def test_max_burst_length_caps_growth(self):
        th = BurstThreshold(v_th=0.1, beta=2.0, max_burst_length=2)
        th.reset((1, 1))
        spikes = np.array([[True]])
        th.update(spikes)  # consecutive = 1, grown
        th.update(spikes)  # consecutive = 2 -> capped
        th.update(spikes)
        assert th.thresholds(3)[0, 0] == pytest.approx(0.2)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            BurstThreshold(beta=1.0)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            BurstThreshold(max_burst_length=0)

    def test_burst_transmits_large_value_logarithmically(self):
        """A backlog V is drained in O(log V / v_th) burst spikes — the core
        mechanism making burst coding fast."""
        from repro.snn.neurons import IFNeuronState

        v_th = 0.125
        backlog = 0.9
        state = IFNeuronState((1, 1))
        th = BurstThreshold(v_th=v_th, beta=2.0)
        th.reset((1, 1))
        # inject the whole backlog at t=0, then nothing
        transmitted = 0.0
        spikes_used = 0
        for t in range(20):
            z = np.array([[backlog]]) if t == 0 else np.zeros((1, 1))
            spikes, amplitudes = state.step(z, th.thresholds(t))
            th.update(spikes)
            transmitted += float(amplitudes.sum())
            spikes_used += int(spikes.sum())
        constant_spikes = int(np.floor(backlog / v_th))  # what rate coding would need
        assert spikes_used < constant_spikes
        assert transmitted == pytest.approx(backlog, abs=v_th)


class TestMakeThreshold:
    def test_rate_default(self):
        th = make_threshold("rate")
        assert isinstance(th, ConstantThreshold)
        assert th.v_th == 1.0

    def test_phase_period_forwarded(self):
        th = make_threshold("phase", phase_period=4)
        assert isinstance(th, PhaseThreshold)
        assert th.period == 4

    def test_burst_defaults(self):
        th = make_threshold("burst")
        assert isinstance(th, BurstThreshold)
        assert th.v_th == 0.125
        assert th.beta == 2.0

    def test_burst_custom_v_th(self):
        assert make_threshold("burst", v_th=0.0625).v_th == 0.0625

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_threshold("real")
