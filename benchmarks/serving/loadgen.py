"""Open-loop bursty load generator for the ``repro serve`` HTTP API.

Drives a real server (in-process :class:`~repro.serving.http.ServingHTTPServer`
in the benchmark, or an external ``repro serve`` process via the CLI entry
point below) with an **open-loop** arrival process: requests fire at
pre-scheduled wall-clock offsets regardless of how fast earlier responses come
back, so a slow server accumulates queueing delay instead of silently slowing
the generator down (closed-loop generators hide exactly the overload this
benchmark exists to measure).

Arrivals are **bursty**: ``burst_size`` requests land together at the start of
every ``burst_interval_s`` window — the arrival shape micro-batching
schedulers care about.  Each request is one ``POST /v1/classify`` carrying one
image (round-robin over the provided pool) and records its status code,
end-to-end latency and response body; :func:`summarise` folds the records into
throughput and p50/p95/p99 latency.

Stdlib only (``urllib``, ``threading``) — the generator must not need
anything the serving stack itself doesn't.

CLI (used by the CI smoke job against a live ``repro serve``)::

    python benchmarks/serving/loadgen.py --url http://127.0.0.1:8311 \
        --requests 24 --burst-size 8 --burst-interval-s 0.2 --shape 1,28,28
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class RequestRecord:
    """Outcome of one load-generated classify request."""

    index: int
    status: int
    latency_ms: float
    scheduled_at_s: float
    #: response body (result payload or error payload); None on transport error
    body: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass
class LoadResult:
    """All records of one load run plus the measured wall-clock duration."""

    records: List[RequestRecord] = field(default_factory=list)
    wall_s: float = 0.0

    def summarise(self) -> Dict[str, object]:
        return summarise(self.records, self.wall_s)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (mirrors :func:`repro.serving.metrics.percentile`)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


def bursty_offsets(
    num_requests: int, burst_size: int, burst_interval_s: float
) -> List[float]:
    """Scheduled start offsets: bursts of ``burst_size`` simultaneous arrivals
    every ``burst_interval_s`` seconds."""
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    if burst_interval_s < 0:
        raise ValueError(f"burst_interval_s must be >= 0, got {burst_interval_s}")
    return [(index // burst_size) * burst_interval_s for index in range(num_requests)]


def _post_classify(
    url: str, payload: dict, timeout_s: float
) -> "tuple[int, Optional[dict]]":
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"{url}/v1/classify",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.load(error)
        except Exception:
            return error.code, None
    except Exception:
        return 0, None  # transport-level failure (refused, timeout, reset)


def run_load(
    url: str,
    images: Sequence[Sequence[float]],
    *,
    num_requests: int,
    burst_size: int,
    burst_interval_s: float,
    scheme: Optional[str] = None,
    priority: Optional[str] = None,
    client_id: Optional[str] = None,
    timeout_s: float = 120.0,
) -> LoadResult:
    """Fire the open-loop bursty schedule at ``url`` and collect every record.

    ``images`` is a pool of JSON-ready image payloads (nested or flat lists);
    request *i* carries ``images[i % len(images)]``, so a fixed pool makes the
    request sequence — and with a deterministic server, the answers —
    reproducible across runs and replica counts.
    """
    offsets = bursty_offsets(num_requests, burst_size, burst_interval_s)
    records: List[Optional[RequestRecord]] = [None] * num_requests
    start = time.perf_counter() + 0.05  # common epoch, slightly in the future

    def fire(index: int) -> None:
        delay = start + offsets[index] - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        payload: Dict[str, object] = {"image": images[index % len(images)]}
        if scheme is not None:
            payload["scheme"] = scheme
        if priority is not None:
            payload["priority"] = priority
        if client_id is not None:
            payload["client_id"] = client_id
        sent = time.perf_counter()
        status, body = _post_classify(url, payload, timeout_s)
        records[index] = RequestRecord(
            index=index,
            status=status,
            latency_ms=(time.perf_counter() - sent) * 1000.0,
            scheduled_at_s=offsets[index],
            body=body,
        )

    threads = [
        threading.Thread(target=fire, args=(index,), name=f"loadgen-{index}")
        for index in range(num_requests)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s + 60.0)
    wall_s = time.perf_counter() - start
    done = [record for record in records if record is not None]
    return LoadResult(records=done, wall_s=wall_s)


def summarise(records: Sequence[RequestRecord], wall_s: float) -> Dict[str, object]:
    """Fold request records into the benchmark row: throughput + percentiles."""
    ok = [record for record in records if record.ok]
    latencies = [record.latency_ms for record in ok]
    status_counts: Dict[str, int] = {}
    for record in records:
        key = str(record.status)
        status_counts[key] = status_counts.get(key, 0) + 1
    return {
        "requests": len(records),
        "ok": len(ok),
        "status_counts": dict(sorted(status_counts.items())),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(ok) / wall_s, 3) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50.0), 3),
            "p95": round(percentile(latencies, 95.0), 3),
            "p99": round(percentile(latencies, 99.0), 3),
            "max": round(max(latencies), 3) if latencies else 0.0,
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="open-loop bursty load generator for repro serve"
    )
    parser.add_argument("--url", required=True, help="server base URL")
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--burst-size", type=int, default=8)
    parser.add_argument("--burst-interval-s", type=float, default=0.2)
    parser.add_argument("--scheme", default=None)
    parser.add_argument("--priority", default=None)
    parser.add_argument("--client-id", default=None)
    parser.add_argument("--timeout-s", type=float, default=120.0)
    parser.add_argument(
        "--shape",
        default="1,28,28",
        help="comma-separated image shape; requests carry a flat zero image",
    )
    parser.add_argument(
        "--min-ok", type=int, default=1,
        help="exit non-zero unless at least this many requests succeeded",
    )
    parser.add_argument("--out", default=None, help="also write the summary JSON here")
    args = parser.parse_args(argv)

    size = 1
    for dim in args.shape.split(","):
        size *= int(dim)
    image = [0.0] * size
    result = run_load(
        args.url,
        [image],
        num_requests=args.requests,
        burst_size=args.burst_size,
        burst_interval_s=args.burst_interval_s,
        scheme=args.scheme,
        priority=args.priority,
        client_id=args.client_id,
        timeout_s=args.timeout_s,
    )
    summary = result.summarise()
    print(json.dumps(summary, indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    if summary["ok"] < args.min_ok:
        print(
            f"error: only {summary['ok']} of {args.requests} requests succeeded "
            f"(min-ok {args.min_ok})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
