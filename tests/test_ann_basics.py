"""Tests for initializers, activations, losses and metrics of the ANN framework."""

import numpy as np
import pytest

from repro.ann.activations import relu, relu_grad, sigmoid, softmax
from repro.ann.initializers import get_initializer, he_normal, he_uniform, xavier_uniform, zeros_init
from repro.ann.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.ann.metrics import accuracy, confusion_matrix, top_k_accuracy


class TestInitializers:
    def test_he_normal_std(self):
        w = he_normal((1000, 50), seed=0)
        expected_std = np.sqrt(2.0 / 1000)
        assert abs(w.std() - expected_std) / expected_std < 0.1

    def test_he_uniform_bounds(self):
        w = he_uniform((100, 10), seed=0)
        limit = np.sqrt(6.0 / 100)
        assert w.min() >= -limit and w.max() <= limit

    def test_xavier_uniform_bounds(self):
        w = xavier_uniform((64, 32), seed=0)
        limit = np.sqrt(6.0 / 96)
        assert np.abs(w).max() <= limit

    def test_conv_shape_fan_in(self):
        w = he_normal((16, 3, 3, 3), seed=0)
        expected_std = np.sqrt(2.0 / (3 * 9))
        assert abs(w.std() - expected_std) / expected_std < 0.15

    def test_zeros(self):
        assert np.all(zeros_init((3, 3)) == 0.0)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            he_normal((3,))

    def test_get_initializer_lookup(self):
        assert get_initializer("he_normal") is he_normal

    def test_get_initializer_unknown(self):
        with pytest.raises(ValueError):
            get_initializer("magic")

    def test_deterministic_given_seed(self):
        assert np.array_equal(he_normal((4, 4), seed=9), he_normal((4, 4), seed=9))


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        assert np.array_equal(relu_grad(np.array([-1.0, 0.5])), [0.0, 1.0])

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stability_large_values(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_softmax_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + sigmoid(-x), 1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        value, _ = loss(logits, np.array([0, 1]))
        assert value < 1e-4

    def test_uniform_prediction_loss(self):
        loss = SoftmaxCrossEntropy()
        value, _ = loss(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert value == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_matches_numeric(self, grad_checker):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 2, 3])
        loss = SoftmaxCrossEntropy()
        _, grad = loss(logits, targets)
        numeric = grad_checker(lambda: loss(logits, targets)[0], logits)
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_one_hot_targets_equivalent(self):
        loss = SoftmaxCrossEntropy()
        logits = np.random.default_rng(1).normal(size=(5, 3))
        labels = np.array([0, 1, 2, 1, 0])
        one_hot = np.eye(3)[labels]
        assert loss(logits, labels)[0] == pytest.approx(loss(logits, one_hot)[0])

    def test_rejects_bad_target_shape(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros(3), np.zeros(3))


class TestMeanSquaredError:
    def test_zero_for_equal(self):
        loss = MeanSquaredError()
        value, grad = loss(np.ones((2, 2)), np.ones((2, 2)))
        assert value == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient_matches_numeric(self, grad_checker):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss = MeanSquaredError()
        _, grad = loss(pred, target)
        numeric = grad_checker(lambda: loss(pred, target)[0], pred)
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanSquaredError()(np.zeros((2, 2)), np.zeros((3, 2)))


class TestMetrics:
    def test_accuracy_from_scores(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(scores, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_from_labels(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0)) == 0.0

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(4))

    def test_top_k(self):
        scores = np.array([[0.1, 0.2, 0.7], [0.35, 0.4, 0.25]])
        labels = np.array([1, 0])
        assert top_k_accuracy(scores, labels, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(scores, labels, k=2) == pytest.approx(1.0)
        assert top_k_accuracy(scores, labels, k=3) == pytest.approx(1.0)

    def test_top_k_bad_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2), k=0)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4
