"""Tests for the micro-batching scheduler (repro.serving.scheduler)."""

import threading
import time

import pytest

from repro.serving.metrics import ServerMetrics, percentile
from repro.serving.scheduler import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    BatcherClosedError,
    MicroBatcher,
    QueueFullError,
    resolve_priority,
)


def _echo_handler(payloads, info):
    """Return each payload tagged with the batch size it rode in."""
    return [(payload, info.size) for payload in payloads]


class FakeClock:
    """Monotonic clock that jumps ``step`` seconds on every read."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestCoalescing:
    def test_batches_coalesce_under_load(self):
        metrics = ServerMetrics()
        with MicroBatcher(
            _echo_handler, max_batch_size=4, max_wait_ms=50.0, metrics=metrics
        ) as batcher:
            futures = [batcher.submit(i) for i in range(20)]
            results = [f.result(timeout=10) for f in futures]
        # every request answered, in submission order
        assert [payload for payload, _ in results] == list(range(20))
        # the histogram accounts for every request...
        histogram = metrics.batch_size_histogram()
        assert sum(size * count for size, count in histogram.items()) == 20
        # ...and at least one executed batch actually coalesced requests
        assert metrics.max_batch_size_seen() > 1
        assert max(size for _, size in results) > 1
        assert metrics.requests_total == 20
        assert metrics.rejected_total == 0

    def test_full_batch_flushes_without_waiting(self):
        # max_wait_ms is huge: only the size trigger can flush, so a prompt
        # result proves the flush-on-max_batch_size path
        with MicroBatcher(
            _echo_handler, max_batch_size=3, max_wait_ms=60_000.0, start=False
        ) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            batcher.start()
            results = [f.result(timeout=10) for f in futures]
            assert [size for _, size in results] == [3, 3, 3]


class TestMaxWaitFlush:
    def test_partial_batch_flushes_on_deadline_with_fake_clock(self):
        # the wait window is a minute of *fake* time: the injected clock
        # expires it deterministically, no real sleeping involved
        clock = FakeClock(step=30.0)
        batcher = MicroBatcher(
            _echo_handler,
            max_batch_size=8,
            max_wait_ms=60_000.0,
            clock=clock,
            start=False,
        )
        futures = [batcher.submit(i) for i in range(2)]
        started = time.monotonic()
        batcher.start()
        results = [f.result(timeout=10) for f in futures]
        elapsed = time.monotonic() - started
        batcher.close()
        # the batch never filled (2 of 8) yet still flushed — on the fake
        # deadline, and in real milliseconds rather than the fake minute
        assert [size for _, size in results] == [2, 2]
        assert elapsed < 5.0

    def test_lone_request_pays_at_most_the_window(self):
        with MicroBatcher(_echo_handler, max_batch_size=8, max_wait_ms=20.0) as batcher:
            payload, size = batcher.submit("solo").result(timeout=10)
        assert payload == "solo"
        assert size == 1


class TestAdmissionControl:
    def test_bounded_queue_rejects_when_full(self):
        release = threading.Event()
        entered = threading.Event()

        def blocking_handler(payloads, info):
            entered.set()
            assert release.wait(timeout=10)
            return list(payloads)

        metrics = ServerMetrics()
        batcher = MicroBatcher(
            blocking_handler,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=3,
            metrics=metrics,
        )
        first = batcher.submit("in-flight")
        assert entered.wait(timeout=10)  # the worker is now stuck in the handler
        queued = [batcher.submit(i) for i in range(3)]  # fills the bounded queue
        with pytest.raises(QueueFullError):
            batcher.submit("overflow")
        assert metrics.rejected_total == 1
        assert batcher.queue_depth == 3
        release.set()
        assert first.result(timeout=10) == "in-flight"
        assert [f.result(timeout=10) for f in queued] == [0, 1, 2]
        batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(_echo_handler)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit("late")


class TestGracefulDrain:
    def test_drain_resolves_every_in_flight_future(self):
        def slow_handler(payloads, info):
            time.sleep(0.02)
            return list(payloads)

        batcher = MicroBatcher(slow_handler, max_batch_size=2, max_wait_ms=5.0)
        futures = [batcher.submit(i) for i in range(7)]
        batcher.close()  # graceful: flush the queue, then join the worker
        assert all(f.done() for f in futures)
        assert [f.result(timeout=0) for f in futures] == list(range(7))
        assert batcher.closed
        batcher.close()  # idempotent

    def test_handler_error_propagates_to_every_future_of_the_batch(self):
        def failing_handler(payloads, info):
            raise RuntimeError("boom")

        metrics = ServerMetrics()
        with MicroBatcher(
            failing_handler, max_batch_size=4, max_wait_ms=5.0, metrics=metrics
        ) as batcher:
            futures = [batcher.submit(i) for i in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result(timeout=10)
        assert metrics.snapshot()["errors_total"] == 2

    def test_wrong_result_count_is_an_error(self):
        with MicroBatcher(
            lambda payloads, info: [], max_batch_size=1, max_wait_ms=0.0
        ) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit("x").result(timeout=10)


class TestPriorities:
    def test_resolve_priority(self):
        assert resolve_priority(None) == PRIORITY_INTERACTIVE
        assert resolve_priority("interactive") == PRIORITY_INTERACTIVE
        assert resolve_priority("BATCH") == PRIORITY_BATCH
        assert resolve_priority(3) == 3
        for bad in ("urgent", True, [1], {"p": 1}):
            with pytest.raises(ValueError):
                resolve_priority(bad)

    def test_interactive_overtakes_queued_batch_work(self):
        """Under contention, queued interactive requests are served before
        batch requests submitted *earlier* (and ties keep submission order)."""
        release = threading.Event()
        entered = threading.Event()
        served = []

        def recording_handler(payloads, info):
            entered.set()
            assert release.wait(timeout=10)
            served.append(list(payloads))
            return list(payloads)

        batcher = MicroBatcher(
            recording_handler, max_batch_size=2, max_wait_ms=0.0, max_queue=8
        )
        wedge = batcher.submit("wedge")  # occupies the single worker
        assert entered.wait(timeout=10)
        lows = [batcher.submit(f"batch-{i}", "batch") for i in range(3)]
        highs = [batcher.submit(f"live-{i}", "interactive") for i in range(3)]
        release.set()
        for future in [wedge, *lows, *highs]:
            future.result(timeout=10)
        batcher.close()
        order = [payload for batch in served for payload in batch]
        assert order[0] == "wedge"
        # every interactive request ran before every batch request
        assert order[1:4] == ["live-0", "live-1", "live-2"]
        assert order[4:] == ["batch-0", "batch-1", "batch-2"]

    def test_full_queue_sheds_lowest_priority_for_interactive(self):
        release = threading.Event()
        entered = threading.Event()

        def blocking_handler(payloads, info):
            entered.set()
            assert release.wait(timeout=10)
            return list(payloads)

        metrics = ServerMetrics()
        batcher = MicroBatcher(
            blocking_handler,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=2,
            metrics=metrics,
        )
        wedge = batcher.submit("wedge")
        assert entered.wait(timeout=10)
        lows = [batcher.submit(f"batch-{i}", "batch") for i in range(2)]
        # queue full of batch work: an interactive submission sheds the
        # *youngest lowest-priority* request instead of bouncing
        high = batcher.submit("live", "interactive")
        assert metrics.shed_total == 1
        assert metrics.rejected_total == 0
        with pytest.raises(QueueFullError) as excinfo:
            lows[1].result(timeout=10)  # the shed future fails with guidance
        assert excinfo.value.retry_after_s > 0.0
        # a second interactive request sheds the remaining batch request...
        high_2 = batcher.submit("live-2", "interactive")
        assert metrics.shed_total == 2
        with pytest.raises(QueueFullError):
            lows[0].result(timeout=10)
        # ...but a third finds only equal-priority work and is rejected
        with pytest.raises(QueueFullError):
            batcher.submit("live-3", "interactive")
        assert metrics.rejected_total == 1
        release.set()
        assert wedge.result(timeout=10) == "wedge"
        assert high.result(timeout=10) == "live"
        assert high_2.result(timeout=10) == "live-2"
        batcher.close()

    def test_queue_full_rejection_carries_retry_after(self):
        release = threading.Event()
        entered = threading.Event()

        def blocking_handler(payloads, info):
            entered.set()
            assert release.wait(timeout=10)
            return list(payloads)

        batcher = MicroBatcher(
            blocking_handler, max_batch_size=2, max_wait_ms=0.0, max_queue=4
        )
        first = batcher.submit("in-flight")
        assert entered.wait(timeout=10)
        queued = [batcher.submit(i) for i in range(4)]
        with pytest.raises(QueueFullError) as excinfo:
            batcher.submit("overflow")
        # before any batch completed, the estimate floors at the wait window
        assert excinfo.value.retry_after_s >= 0.05
        assert batcher.estimate_retry_after() >= 0.05
        release.set()
        first.result(timeout=10)
        for future in queued:
            future.result(timeout=10)
        batcher.close()


class TestWorkerPool:
    def test_workers_drain_concurrently(self):
        """Two workers overlap on a blocking handler: with a single worker the
        second batch could never enter the handler while the first is stuck."""
        barrier = threading.Barrier(2, timeout=10)

        def rendezvous_handler(payloads, info):
            barrier.wait()  # only passable when two batches run at once
            return [(payload, info.replica) for payload in payloads]

        with MicroBatcher(
            rendezvous_handler, max_batch_size=1, max_wait_ms=0.0, num_workers=2
        ) as batcher:
            futures = [batcher.submit(i) for i in range(2)]
            results = [f.result(timeout=10) for f in futures]
        assert sorted(payload for payload, _ in results) == [0, 1]
        assert sorted(replica for _, replica in results) == [0, 1]

    def test_multi_worker_drain_resolves_every_future(self):
        def slow_handler(payloads, info):
            time.sleep(0.01)
            return [(payload, info.replica) for payload in payloads]

        batcher = MicroBatcher(
            slow_handler, max_batch_size=2, max_wait_ms=5.0, num_workers=3,
            max_queue=64,
        )
        futures = [batcher.submit(i) for i in range(17)]
        batcher.close()  # graceful: every admitted future resolves
        assert all(f.done() for f in futures)
        results = [f.result(timeout=0) for f in futures]
        assert sorted(payload for payload, _ in results) == list(range(17))
        assert set(replica for _, replica in results) <= {0, 1, 2}

    def test_replica_utilisation_gauge(self):
        def busy_handler(payloads, info):
            time.sleep(0.02)
            return list(payloads)

        batcher = MicroBatcher(
            busy_handler, max_batch_size=1, max_wait_ms=0.0, num_workers=2
        )
        futures = [batcher.submit(i) for i in range(4)]
        for future in futures:
            future.result(timeout=10)
        utilisation = batcher.replica_utilisation()
        batcher.close()
        assert len(utilisation) == 2
        assert all(0.0 <= value <= 1.0 for value in utilisation)
        assert sum(utilisation) > 0.0


class TestValidationAndMetrics:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"max_queue": 0},
            {"num_workers": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(_echo_handler, start=False, **kwargs)

    def test_percentile_helper(self):
        assert percentile([], 50) == 0.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 51.0  # nearest rank on 0-based index
        assert percentile(values, 95) == 95.0
        assert percentile([7.0], 95) == 7.0

    def test_snapshot_shape(self):
        metrics = ServerMetrics()
        metrics.record_submit()
        metrics.record_batch(3, latencies_ms=[1.0, 2.0, 3.0])
        snapshot = metrics.snapshot(queue_depth=5)
        assert snapshot["requests_total"] == 1
        assert snapshot["batches_total"] == 1
        assert snapshot["images_total"] == 3
        assert snapshot["queue_depth"] == 5
        assert snapshot["batch_size_histogram"] == {"3": 1}
        assert snapshot["latency_ms"]["count"] == 3
        assert snapshot["latency_ms"]["p50"] == 2.0
