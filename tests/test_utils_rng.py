"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9, size=10)
        b = as_rng(2).integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=20)
        b = children[1].integers(0, 10**9, size=20)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 10**6) for g in spawn_rngs(99, 3)]
        b = [g.integers(0, 10**6) for g in spawn_rngs(99, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)


class TestRngMixin:
    class Dummy(RngMixin):
        def __init__(self, seed=None):
            self._init_rng(seed)

    def test_rng_property(self):
        obj = self.Dummy(seed=1)
        assert isinstance(obj.rng, np.random.Generator)

    def test_lazy_rng_without_init(self):
        class Lazy(RngMixin):
            pass

        assert isinstance(Lazy().rng, np.random.Generator)

    def test_reseed_reproduces_stream(self):
        obj = self.Dummy(seed=7)
        first = obj.rng.integers(0, 1000, size=5)
        obj.reseed(7)
        second = obj.rng.integers(0, 1000, size=5)
        assert np.array_equal(first, second)
