"""Pluggable registry of compute backends (the coding-registry pattern).

Backends register a *factory* under a name; the factory builds the backend
instance on first resolution and may raise
:class:`BackendUnavailableError` when its dependency is missing (e.g. the
``torch`` backend without PyTorch installed).  Unavailable backends still
appear in listings — ``repro --list-backends`` shows the reason — but cannot
be resolved.

Resolution order for the effective backend (mirroring the dtype policy in
:mod:`repro.utils.dtypes`):

1. an explicit ``backend=`` argument / config field
   (e.g. ``SimulationConfig(backend="numpy-blocked")``);
2. a process-wide override installed via :func:`set_default_backend` or the
   :func:`backend_scope` context manager (the CLI's ``--backend`` flag);
3. the ``REPRO_BACKEND`` environment variable;
4. the project default, ``numpy``.

Adding a backend in one file
----------------------------
Subclass :class:`~repro.backends.base.KernelBackend` (usually via
:class:`~repro.backends.numpy_backend.NumpyBackend`, overriding only the
kernels that differ), register a factory, and import the module once::

    from repro.backends.registry import register_backend

    @register_backend("my-backend", description="…")
    def _build_my_backend():
        return MyBackend()
"""

from __future__ import annotations

import contextlib
import difflib
import os
import threading
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.backends.base import KernelBackend

#: builds a backend instance (raises BackendUnavailableError when it cannot)
BackendFactory = Callable[[], KernelBackend]

#: the project default backend
DEFAULT_BACKEND = "numpy"

#: name of the environment variable selecting the process default
BACKEND_ENV_VAR = "REPRO_BACKEND"


class UnknownBackendError(ValueError):
    """Raised for an unregistered backend name (with a did-you-mean hint)."""


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend's dependency is missing."""


class BackendDefinition:
    """One registered backend: name, factory and description."""

    __slots__ = ("name", "description", "factory")

    def __init__(self, name: str, description: str, factory: BackendFactory) -> None:
        self.name = name
        self.description = description
        self.factory = factory


_REGISTRY: Dict[str, BackendDefinition] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
_INSTANCE_LOCK = threading.Lock()
_BUILTINS_LOADED = False
_override: Optional[str] = None


def register_backend(
    name: str, *, description: str = ""
) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator registering a backend factory under ``name``."""
    key = str(name).strip().lower()
    if not key:
        raise ValueError("backend name must be a non-empty string")

    def decorator(factory: BackendFactory) -> BackendFactory:
        _REGISTRY[key] = BackendDefinition(key, description, factory)
        return factory

    return decorator


def _ensure_builtins() -> None:
    """Import the modules registering the in-tree backends (idempotent).

    The loaded flag is only set after every import succeeds, so a transient
    failure surfaces again on the next call instead of leaving the registry
    permanently empty.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # imported for their registration side effects
    import repro.backends.numpy_backend  # noqa: F401  (the reference backend)
    import repro.backends.blocked  # noqa: F401  (tiled/threaded gemm variant)
    import repro.backends.torch_backend  # noqa: F401  (optional torch backend)

    _BUILTINS_LOADED = True


def _definition(name: str) -> BackendDefinition:
    _ensure_builtins()
    key = str(name).strip().lower()
    definition = _REGISTRY.get(key)
    if definition is None:
        available = sorted(_REGISTRY)
        close = difflib.get_close_matches(key, available, n=1)
        hint = f"did you mean {close[0]!r}? " if close else ""
        raise UnknownBackendError(
            f"unknown compute backend {name!r}; {hint}available: {', '.join(available)}"
        )
    return definition


def backend_names() -> List[str]:
    """All registered backend names, sorted (available or not)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def validate_backend_name(name: str) -> str:
    """Check ``name`` is registered (raising with a did-you-mean hint) and
    return its canonical form.  Does *not* require the backend's dependency to
    be importable — availability is checked at resolution time."""
    return _definition(name).name


def get_backend(name: str) -> KernelBackend:
    """Resolve a backend name to its (cached, process-wide) instance.

    Raises :class:`UnknownBackendError` for unregistered names and
    :class:`BackendUnavailableError` when the backend's dependency is missing.
    """
    definition = _definition(name)
    with _INSTANCE_LOCK:
        instance = _INSTANCES.get(definition.name)
        if instance is None:
            instance = definition.factory()
            _INSTANCES[definition.name] = instance
    return instance


def default_backend_name() -> str:
    """The currently effective backend name (without an explicit override)."""
    if _override is not None:
        return _override
    env = os.environ.get(BACKEND_ENV_VAR)
    if env and env.strip():
        return validate_backend_name(env)
    return DEFAULT_BACKEND


def set_default_backend(name: Optional[str]) -> str:
    """Install a process-wide default backend (``None`` clears the override)."""
    global _override
    _override = None if name is None else validate_backend_name(name)
    return default_backend_name()


@contextlib.contextmanager
def backend_scope(name: str) -> Iterator[KernelBackend]:
    """Temporarily override the default backend::

        with backend_scope("numpy"):
            result = snn.run(x, config)
    """
    global _override
    previous = _override
    _override = validate_backend_name(name)
    try:
        yield get_backend(_override)
    finally:
        _override = previous


def resolve_backend(value: "Union[str, KernelBackend, None]" = None) -> KernelBackend:
    """Resolve an optional explicit backend against the policy default.

    Accepts a :class:`~repro.backends.base.KernelBackend` instance (returned
    as-is), a registered name, or ``None`` for the process default.
    """
    if isinstance(value, KernelBackend):
        return value
    if value is None:
        return get_backend(default_backend_name())
    return get_backend(value)


def backend_metadata() -> List[Dict[str, object]]:
    """Introspection rows for every registered backend (available or not).

    The single source of truth behind ``repro --list-backends`` and the test
    suite's backend matrix: one plain dict per backend with its availability
    and, when unavailable, the reason.
    """
    _ensure_builtins()
    rows: List[Dict[str, object]] = []
    for key in sorted(_REGISTRY):
        definition = _REGISTRY[key]
        error: Optional[str] = None
        try:
            instance = get_backend(key)
            if not instance.available():
                error = instance.availability_error() or "unavailable"
        except BackendUnavailableError as exc:
            error = str(exc)
        rows.append(
            {
                "backend": definition.name,
                "available": error is None,
                "default": definition.name == DEFAULT_BACKEND,
                "description": definition.description,
                "error": error,
            }
        )
    return rows


def clear_backend_instances() -> None:
    """Drop every cached backend instance (tests)."""
    with _INSTANCE_LOCK:
        _INSTANCES.clear()
