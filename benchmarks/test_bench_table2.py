"""Benchmark regenerating Table 2: comparison with prior deep-SNN conversion
methods on the MNIST-like and CIFAR-10-like workloads (accuracy, latency,
spikes, spiking density, normalized TrueNorth / SpiNNaker energy).

Paper shape to reproduce:

* every method's SNN accuracy approaches its DNN accuracy except where the
  paper also reports a gap,
* the phase-phase rows (Kim et al.) have the highest spiking density,
* the burst-coding rows have the lowest (or near-lowest) spiking density and
  the lowest normalized energy on both architectures.

Set ``REPRO_BENCH_TABLE2_FULL=1`` to include the CIFAR-100-like block as well
(adds a 100-class workload and roughly doubles the runtime).
"""

import os

from repro.experiments.table2 import format_table2, run_table2

BENCH_TIME_STEPS = int(os.environ.get("REPRO_BENCH_TIME_STEPS", "150"))
BENCH_NUM_IMAGES = int(os.environ.get("REPRO_BENCH_NUM_IMAGES", "24"))


def test_bench_table2(benchmark, save_result, mnist_cnn_workload, cifar10_vgg_workload):
    datasets = ("mnist", "cifar10")
    if os.environ.get("REPRO_BENCH_TABLE2_FULL"):
        datasets = ("mnist", "cifar10", "cifar100")

    rows = benchmark.pedantic(
        lambda: run_table2(
            datasets=datasets,
            workloads={"mnist": mnist_cnn_workload, "cifar10": cifar10_vgg_workload},
            time_steps=BENCH_TIME_STEPS,
            num_images=min(16, BENCH_NUM_IMAGES),
            target_fraction=0.99,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("table2_method_comparison", format_table2(rows))

    for dataset in datasets:
        dataset_rows = [row for row in rows if row.dataset == dataset]
        ours = [row for row in dataset_rows if row.method.startswith("Ours")]
        kim = [row for row in dataset_rows if row.method.startswith("Kim")]

        # the proposed method reaches (close to) the DNN accuracy
        assert any(row.snn_accuracy >= row.dnn_accuracy - 0.05 for row in ours)

        # the weighted-spike (phase-phase) baseline spends more spikes to get
        # to its operating point than the best burst-coding row (Table 2's
        # "# of spikes" ordering)
        best_ours = min(ours, key=lambda row: row.spikes_per_image)
        if kim:
            assert kim[0].spikes_per_image > best_ours.spikes_per_image

        # the proposed method is cheaper than the weighted-spike baseline on
        # both architectures, and within 2x of the cheapest method overall
        # (at paper scale it is the cheapest outright; see EXPERIMENTS.md for
        # the laptop-scale deviation on the rate baselines)
        best_ours_tn = min(row.energy_truenorth for row in ours)
        best_ours_sp = min(row.energy_spinnaker for row in ours)
        if kim:
            assert best_ours_tn < kim[0].energy_truenorth
            assert best_ours_sp < kim[0].energy_spinnaker
        others_tn = [r.energy_truenorth for r in dataset_rows if not r.method.startswith("Ours")]
        others_sp = [r.energy_spinnaker for r in dataset_rows if not r.method.startswith("Ours")]
        assert best_ours_tn <= min(others_tn) * 2.0 or best_ours_sp <= min(others_sp) * 2.0
