"""Shared scheme-sweep helper used by Table 1, Fig. 3 and Fig. 4.

The paper evaluates one trained VGG-16 under every input/hidden coding
combination; :func:`run_all_schemes` does the same for a workload and returns
one :class:`~repro.core.pipeline.AggregatedRun` per scheme so the three
experiments can share the (expensive) simulations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.hybrid import HybridCodingScheme, table1_schemes
from repro.core.pipeline import AggregatedRun, PipelineConfig, SNNInferencePipeline
from repro.experiments.workloads import Workload


def make_pipeline(
    workload: Workload,
    time_steps: int = 150,
    num_images: int = 24,
    batch_size: int = 16,
    record_trains: bool = False,
    record_outputs_every: int = 1,
    sample_fraction: float = 0.1,
    seed: int = 0,
) -> SNNInferencePipeline:
    """Build an inference pipeline with the experiment-harness defaults."""
    config = PipelineConfig(
        time_steps=time_steps,
        batch_size=batch_size,
        record_outputs_every=record_outputs_every,
        record_trains=record_trains,
        sample_fraction=sample_fraction,
        max_test_images=num_images,
        seed=seed,
    )
    return SNNInferencePipeline(workload.model, workload.data, config)


def run_all_schemes(
    workload: Workload,
    schemes: Optional[Sequence[HybridCodingScheme]] = None,
    time_steps: int = 150,
    num_images: int = 24,
    batch_size: int = 16,
    v_th: Optional[float] = 0.125,
    seed: int = 0,
) -> Dict[str, AggregatedRun]:
    """Evaluate every coding scheme on ``workload`` and return the runs.

    Parameters
    ----------
    schemes:
        Coding schemes to evaluate; defaults to the registry-driven Table 1
        sweep (:func:`repro.core.hybrid.table1_schemes` — every registered
        input coding × every registered hidden coding, so extensions like
        TTFS appear automatically).
    v_th:
        Hidden-layer threshold used when building the default scheme list.
    """
    if schemes is None:
        schemes = table1_schemes(v_th=v_th)
    pipeline = make_pipeline(
        workload,
        time_steps=time_steps,
        num_images=num_images,
        batch_size=batch_size,
        seed=seed,
    )
    runs: Dict[str, AggregatedRun] = {}
    for scheme in schemes:
        runs[scheme.notation] = pipeline.run_scheme(scheme)
    return runs
