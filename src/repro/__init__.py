"""repro — reproduction of "Fast and Efficient Information Transmission with
Burst Spikes in Deep Spiking Neural Networks" (Park, Kim, Choe, Yoon — DAC 2019).

The package is organised bottom-up:

* :mod:`repro.ann` — numpy DNN framework used to train the source networks,
* :mod:`repro.data` — synthetic MNIST/CIFAR-like datasets,
* :mod:`repro.models` — MLP / CNN / VGG-16 builders,
* :mod:`repro.conversion` — DNN→SNN weight normalisation and conversion,
* :mod:`repro.backends` — the pluggable compute-backend layer: every kernel
  hot path (GEMM, gathers, conv plans, IF/threshold updates) behind a
  registry of :class:`~repro.backends.base.KernelBackend` implementations,
* :mod:`repro.snn` — the discrete-time spiking simulator (IF neurons,
  threshold dynamics, weighted spikes, encoders),
* :mod:`repro.core` — the paper's contribution: burst coding and the
  layer-wise hybrid coding scheme, the pluggable coding-scheme registry
  (:mod:`repro.core.registry`), plus the end-to-end pipeline,
* :mod:`repro.engine` — the layered inference engine (build / plan / run)
  and the reusable :class:`~repro.engine.session.InferenceSession`,
* :mod:`repro.analysis` — ISI / burst / firing-pattern / latency analyses,
* :mod:`repro.energy` — TrueNorth / SpiNNaker normalized-energy model,
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> from repro import (
...     make_mnist_like, build_mlp, SNNInferencePipeline, PipelineConfig,
...     HybridCodingScheme,
... )
>>> data = make_mnist_like(samples_per_class=20, seed=0)
>>> model = build_mlp(data.input_shape, [64], data.num_classes, seed=0)
>>> _ = model.fit(data.train.x, data.train.y, epochs=5)
>>> pipeline = SNNInferencePipeline(model, data, PipelineConfig(time_steps=60))
>>> run = pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))
>>> 0.0 <= run.accuracy <= 1.0
True
"""

from repro.core import (
    AggregatedRun,
    CodingParams,
    HybridCodingScheme,
    NeuralCoding,
    PipelineConfig,
    SNNInferencePipeline,
    standard_schemes,
    table1_schemes,
)
from repro.backends import (
    KernelBackend,
    backend_metadata,
    backend_names,
    backend_scope,
    resolve_backend,
    set_default_backend,
)
from repro.conversion import ConversionConfig, convert_to_snn, normalize_weights
from repro.data import (
    DataSplit,
    Dataset,
    load_dataset,
    make_cifar10_like,
    make_cifar100_like,
    make_mnist_like,
)
from repro.models import build_cnn, build_mlp, build_small_cnn, build_vgg16, build_vgg_small
from repro.engine import InferenceSession, build_network
from repro.snn import (
    BurstThreshold,
    ConstantThreshold,
    PhaseThreshold,
    SimulationConfig,
    SpikingNetwork,
    TTFSEncoder,
    make_encoder,
    make_threshold,
)
from repro.energy import SPINNAKER, TRUENORTH, EnergyWorkload, estimate_energy, normalized_energy
from repro.utils.serialization import load_model_weights, save_model_weights
from repro.analysis.information import compare_codings, transmission_efficiency, transmission_trace

__version__ = "1.0.0"

__all__ = [
    "load_model_weights",
    "save_model_weights",
    "compare_codings",
    "transmission_efficiency",
    "transmission_trace",
    "AggregatedRun",
    "CodingParams",
    "HybridCodingScheme",
    "NeuralCoding",
    "PipelineConfig",
    "SNNInferencePipeline",
    "standard_schemes",
    "table1_schemes",
    "KernelBackend",
    "backend_metadata",
    "backend_names",
    "backend_scope",
    "resolve_backend",
    "set_default_backend",
    "ConversionConfig",
    "convert_to_snn",
    "normalize_weights",
    "DataSplit",
    "Dataset",
    "load_dataset",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_mnist_like",
    "build_cnn",
    "build_mlp",
    "build_small_cnn",
    "build_vgg16",
    "build_vgg_small",
    "BurstThreshold",
    "ConstantThreshold",
    "PhaseThreshold",
    "SimulationConfig",
    "SpikingNetwork",
    "TTFSEncoder",
    "InferenceSession",
    "build_network",
    "make_encoder",
    "make_threshold",
    "SPINNAKER",
    "TRUENORTH",
    "EnergyWorkload",
    "estimate_energy",
    "normalized_energy",
    "__version__",
]
