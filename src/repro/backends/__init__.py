"""Pluggable compute backends for the simulation engine's kernel hot paths.

The engine's per-step math — GEMMs, gathers over active features, im2col /
direct-convolution plans, slab pooling and the elementwise integrate-and-fire
/ burst-threshold updates — runs behind the :class:`KernelBackend` seam
defined in :mod:`repro.backends.base`.  Backends register by name (the same
decorator pattern as the coding-scheme registry) and are resolved through
:func:`resolve_backend`; ``repro --list-backends`` prints the registry.

In-tree backends:

* ``numpy`` (default) — the reference kernels, float64 bit-identical to the
  seed engine;
* ``numpy-blocked`` — the reference kernels with the propagation GEMM tiled
  over batch shards (threaded on multi-core machines);
* ``torch`` — optional PyTorch kernels; registers everywhere, resolves only
  where torch is installed (clean unavailability error otherwise).

Selection: ``SimulationConfig(backend=...)`` / ``PipelineConfig(backend=...)``
/ ``ServingConfig(backend=...)``, the ``repro --backend`` CLI flag, or the
``REPRO_BACKEND`` environment variable.

Fused step programs: every backend can additionally compile a layer's whole
per-step kernel sequence into one
:class:`~repro.backends.programs.StepProgram` (``compile_step_program``) —
one seam crossing per layer per step; backends that only implement the
unfused primitives fall back to the composed multi-call step automatically.
On top of that, ``compile_network_program`` compiles the *entire network
step* (encoder, every layer program, spike recording) into one
:class:`~repro.backends.programs.NetworkStepProgram` executing whole blocks
of consecutive steps per seam crossing (``REPRO_FUSED`` selects the tier:
``network`` / ``layer`` / ``composed``).  See
:mod:`repro.backends.programs` and :mod:`repro.backends.instrument`.
"""

from repro.backends.base import KernelBackend
from repro.backends.instrument import InstrumentedBackend, KernelCallRecorder
from repro.backends.programs import (
    ComposedStepProgram,
    NetworkStepProgram,
    StepProgram,
    compile_network_step_program,
    fused_mode,
    fused_programs_enabled,
    fused_scope,
    network_programs_enabled,
    set_fused_programs,
)
from repro.backends.registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    BackendUnavailableError,
    UnknownBackendError,
    backend_metadata,
    backend_names,
    backend_scope,
    clear_backend_instances,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    validate_backend_name,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "ComposedStepProgram",
    "InstrumentedBackend",
    "KernelBackend",
    "KernelCallRecorder",
    "NetworkStepProgram",
    "StepProgram",
    "UnknownBackendError",
    "compile_network_step_program",
    "fused_mode",
    "fused_programs_enabled",
    "fused_scope",
    "network_programs_enabled",
    "set_fused_programs",
    "backend_metadata",
    "backend_names",
    "backend_scope",
    "clear_backend_instances",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "validate_backend_name",
]
