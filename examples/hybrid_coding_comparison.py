#!/usr/bin/env python
"""Compare hybrid neural coding schemes on a CIFAR-10-like CNN workload.

This is the scenario the paper's Table 1 and Fig. 4 study: one trained
network, evaluated as an SNN under different input/hidden coding
combinations.  The script prints a Table-1-style summary plus coarse
inference curves, showing that

* burst coding in the hidden layers recovers the DNN accuracy for every
  input coding,
* phase coding in the hidden layers costs the most spikes,
* rate coding of the input (Poisson spike trains) converges slowest.

It also demonstrates the two extension points added by the layered engine:

* schemes are resolved through the **coding registry** — the comparison
  includes ``ttfs-burst``, whose TTFS input encoder is registered in one
  file (``repro/snn/ttfs.py``) and known to no other call site,
* batches are served through a reusable **InferenceSession** (prepare once,
  serve many batches) — the same engine path the pipeline uses internally.

Run with:  python examples/hybrid_coding_comparison.py [--full]
Runtime:   ~1 minute with the default settings, a few minutes with --full
           (all nine combinations and a longer time budget).
"""

import argparse

from repro import (
    HybridCodingScheme,
    InferenceSession,
    PipelineConfig,
    SimulationConfig,
    SNNInferencePipeline,
    table1_schemes,
)
from repro.core import registry
from repro.experiments.workloads import cifar10_workload
from repro.utils.tables import Table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all nine coding combinations")
    parser.add_argument("--time-steps", type=int, default=150, help="simulation horizon")
    parser.add_argument("--images", type=int, default=24, help="number of test images")
    parser.add_argument("--v-th", type=float, default=0.125, help="burst base threshold")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    workload = cifar10_workload()
    print(f"workload: {workload.name}, DNN test accuracy {workload.dnn_test_accuracy:.3f}")
    print(
        f"registered codings: input = {', '.join(registry.input_codings())} ; "
        f"hidden = {', '.join(registry.hidden_codings())}"
    )

    if args.full:
        schemes = table1_schemes(v_th=args.v_th)
    else:
        schemes = [
            HybridCodingScheme.from_notation(
                notation, v_th=args.v_th if "burst" in notation else None
            )
            for notation in (
                "real-rate", "phase-phase", "real-burst", "phase-burst", "rate-burst",
            )
        ]
    # the TTFS input coding exists only in the registry — no enum edits, no
    # make_encoder branches — yet builds a scheme like any built-in
    schemes.append(HybridCodingScheme.from_notation("ttfs-burst", v_th=args.v_th))

    pipeline = SNNInferencePipeline(
        workload.model,
        workload.data,
        PipelineConfig(time_steps=args.time_steps, batch_size=16, max_test_images=args.images),
    )

    table = Table(
        ["scheme", "SNN acc %", "DNN acc %", "latency", "spikes/image"],
        title="Hybrid coding comparison (Table 1 style)",
    )
    curves = {}
    for scheme in schemes:
        run = pipeline.run_scheme(scheme)
        metrics = run.metrics(target_accuracy=run.dnn_accuracy)
        table.add_row(
            {
                "scheme": scheme.notation,
                "SNN acc %": round(run.accuracy * 100, 2),
                "DNN acc %": round(run.dnn_accuracy * 100, 2),
                "latency": metrics.latency if metrics.latency else f">{run.time_steps}",
                "spikes/image": round(run.spikes_per_image, 1),
            }
        )
        curves[scheme.notation] = (run.recorded_steps, run.accuracy_curve)

    print()
    print(table.render())

    print("\nInference curves (accuracy at selected time steps):")
    checkpoints = [args.time_steps // 10, args.time_steps // 4, args.time_steps // 2, args.time_steps]
    header = "scheme".ljust(14) + "".join(f"t={c}".rjust(10) for c in checkpoints)
    print(header)
    for notation, (steps, accuracy) in curves.items():
        cells = []
        for checkpoint in checkpoints:
            index = int(min(range(len(steps)), key=lambda i: abs(int(steps[i]) - checkpoint)))
            cells.append(f"{accuracy[index]:.3f}".rjust(10))
        print(notation.ljust(14) + "".join(cells))

    # Serving workflow: one InferenceSession per deployed scheme — the
    # conversion, simulation plan and kernel calibrations are paid once and
    # every subsequent request only runs the step loop.
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=args.v_th)
    session = InferenceSession(
        pipeline.build_snn(scheme), SimulationConfig(time_steps=args.time_steps)
    )
    x = workload.data.test.x[: args.images]
    y = workload.data.test.y[: args.images]
    half = max(1, x.shape[0] // 2)
    correct = 0
    for start in range(0, x.shape[0], half):
        result = session.run(x[start : start + half], labels=y[start : start + half])
        correct += int((result.predictions() == y[start : start + half]).sum())
    print(
        f"\nInferenceSession({scheme.notation}): served {session.images_served} images "
        f"in {session.batches_served} batches, accuracy {correct / x.shape[0]:.3f}"
    )


if __name__ == "__main__":
    main()
