"""Tests for the IF neuron population (Eqs. 1–4)."""

import numpy as np
import pytest

from repro.snn.neurons import IFNeuronState, ResetMode, expected_rate_spike_count


class TestResetMode:
    def test_from_string(self):
        assert ResetMode.from_value("subtract") is ResetMode.SUBTRACT
        assert ResetMode.from_value("zero") is ResetMode.ZERO

    def test_from_enum_passthrough(self):
        assert ResetMode.from_value(ResetMode.ZERO) is ResetMode.ZERO

    def test_invalid(self):
        with pytest.raises(ValueError):
            ResetMode.from_value("bounce")


class TestIFNeuronState:
    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            IFNeuronState((0, 3))

    def test_no_spike_below_threshold(self):
        state = IFNeuronState((1, 2))
        spikes, amplitudes = state.step(np.array([[0.4, 0.2]]), np.asarray(1.0))
        assert not spikes.any()
        assert np.allclose(amplitudes, 0.0)
        assert np.allclose(state.v_mem, [[0.4, 0.2]])

    def test_spike_at_threshold(self):
        state = IFNeuronState((1, 1))
        spikes, amplitudes = state.step(np.array([[1.0]]), np.asarray(1.0))
        assert spikes.all()
        assert amplitudes[0, 0] == 1.0

    def test_reset_by_subtraction_keeps_residual(self):
        state = IFNeuronState((1, 1), reset_mode="subtract")
        state.step(np.array([[1.7]]), np.asarray(1.0))
        assert state.v_mem[0, 0] == pytest.approx(0.7)

    def test_reset_to_zero_discards_residual(self):
        state = IFNeuronState((1, 1), reset_mode="zero")
        state.step(np.array([[1.7]]), np.asarray(1.0))
        assert state.v_mem[0, 0] == 0.0

    def test_amplitude_equals_threshold(self):
        state = IFNeuronState((1, 1))
        _, amplitudes = state.step(np.array([[5.0]]), np.asarray(0.25))
        assert amplitudes[0, 0] == 0.25

    def test_per_neuron_thresholds(self):
        state = IFNeuronState((1, 2))
        spikes, amplitudes = state.step(
            np.array([[0.3, 0.3]]), np.array([[0.25, 0.5]])
        )
        assert spikes[0, 0] and not spikes[0, 1]
        assert amplitudes[0, 0] == 0.25

    def test_negative_input_allowed_by_default(self):
        state = IFNeuronState((1, 1))
        state.step(np.array([[-0.5]]), np.asarray(1.0))
        assert state.v_mem[0, 0] == -0.5

    def test_negative_membrane_clamped_when_disallowed(self):
        state = IFNeuronState((1, 1), allow_negative_membrane=False)
        state.step(np.array([[-0.5]]), np.asarray(1.0))
        assert state.v_mem[0, 0] == 0.0

    def test_non_positive_threshold_rejected(self):
        state = IFNeuronState((1, 1))
        with pytest.raises(ValueError):
            state.step(np.array([[0.1]]), np.asarray(0.0))

    def test_total_spike_counter(self):
        state = IFNeuronState((2, 3))
        state.step(np.full((2, 3), 1.5), np.asarray(1.0))
        state.step(np.full((2, 3), 1.5), np.asarray(1.0))
        assert state.total_spikes == 12

    def test_reset_clears_state(self):
        state = IFNeuronState((1, 1))
        state.step(np.array([[2.0]]), np.asarray(1.0))
        state.reset()
        assert state.total_spikes == 0
        assert state.v_mem[0, 0] == 0.0

    def test_num_neurons(self):
        assert IFNeuronState((4, 3, 2, 2)).num_neurons == 12

    def test_conservation_reset_by_subtraction(self):
        """Injected charge = transmitted charge + residual membrane."""
        rng = np.random.default_rng(0)
        state = IFNeuronState((1, 5), reset_mode="subtract")
        injected = np.zeros(5)
        transmitted = np.zeros(5)
        for _ in range(100):
            z = rng.uniform(0, 0.4, size=(1, 5))
            injected += z[0]
            _, amplitudes = state.step(z, np.asarray(0.3))
            transmitted += amplitudes[0]
        assert np.allclose(injected, transmitted + state.v_mem[0], atol=1e-9)

    def test_rate_coding_spike_count_formula(self):
        """Constant drive under constant threshold matches the analytic count
        (up to one spike of floating-point accumulation slack)."""
        for value, threshold, steps in [(0.3, 1.0, 100), (0.05, 0.5, 200), (1.5, 1.0, 50)]:
            state = IFNeuronState((1, 1))
            count = 0
            for _ in range(steps):
                spikes, _ = state.step(np.array([[value]]), np.asarray(threshold))
                count += int(spikes.sum())
            assert abs(count - expected_rate_spike_count(value, threshold, steps)) <= 1


class TestExpectedRateSpikeCount:
    def test_zero_value(self):
        assert expected_rate_spike_count(0.0, 1.0, 100) == 0

    def test_capped_at_time_steps(self):
        assert expected_rate_spike_count(5.0, 1.0, 10) == 10

    def test_simple_case(self):
        assert expected_rate_spike_count(0.25, 1.0, 100) == 25

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_rate_spike_count(0.1, 0.0, 10)
        with pytest.raises(ValueError):
            expected_rate_spike_count(0.1, 1.0, -1)
