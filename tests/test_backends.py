"""Backend registry, resolution and cross-backend parity (golden suite).

Four layers of guarantees:

* the registry plumbing — registration, did-you-mean errors, env var /
  override / explicit-config resolution order, clean unavailability of
  optional backends (torch without PyTorch installed);
* the **parity matrix** — every *available* registered backend, across coding
  schemes × dtypes on a trained CNN workload, classifies identically to the
  numpy reference backend (spike counts within the engine's documented
  tolerance); unavailable backends are skipped, never failed;
* **reference bit-identity** — the numpy backend (resolved explicitly) is
  bit-for-bit the engine default, in both dtypes, so the seed golden
  reference (``benchmarks/perf/seed_reference.json``, enforced by
  ``tests/test_dtype_policy.py``) pins this backend's float64 outputs;
* the calibration-cache keying — sparsity crossovers are cached per backend
  so mixed-backend processes cannot cross-contaminate dispatch decisions.
"""

import numpy as np
import pytest

from repro.backends import (
    BackendUnavailableError,
    UnknownBackendError,
    backend_metadata,
    backend_names,
    backend_scope,
    default_backend_name,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from repro.backends.base import KernelBackend
from repro.conversion.converter import convert_to_snn
from repro.core.hybrid import HybridCodingScheme
from repro.snn.network import SimulationConfig

#: the schemes the parity matrix exercises: the paper's proposal (conv sparse
#: paths + burst dynamics) and the real-input variant (dense-heavy drive)
PARITY_SCHEMES = ("phase-burst", "real-burst")
PARITY_DTYPES = ("float32", "float64")


def _available_backends():
    return [row["backend"] for row in backend_metadata() if row["available"]]


def _unavailable_backends():
    return [row for row in backend_metadata() if not row["available"]]


@pytest.fixture(scope="module")
def parity_snn_factory(trained_cnn, tiny_color_split):
    """Build a converted SNN for a scheme (shared weights via the fixture)."""

    def build(notation: str):
        scheme = HybridCodingScheme.from_notation(notation, v_th=0.125)
        return convert_to_snn(
            trained_cnn,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=tiny_color_split.train.x[:24],
        )

    return build


class TestBackendRegistry:
    def test_numpy_backends_always_available(self):
        names = backend_names()
        assert "numpy" in names and "numpy-blocked" in names and "torch" in names
        available = _available_backends()
        assert "numpy" in available and "numpy-blocked" in available

    def test_resolution_is_cached_singleton(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert isinstance(resolve_backend("numpy"), KernelBackend)

    def test_unknown_backend_did_you_mean(self):
        with pytest.raises(UnknownBackendError, match="did you mean 'numpy'"):
            resolve_backend("numpyy")

    def test_instance_passthrough(self):
        instance = resolve_backend("numpy")
        assert resolve_backend(instance) is instance

    def test_default_resolution_order(self, monkeypatch):
        # 4) project default
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "numpy"
        # 3) environment variable
        monkeypatch.setenv("REPRO_BACKEND", "numpy-blocked")
        assert default_backend_name() == "numpy-blocked"
        assert resolve_backend().name == "numpy-blocked"
        # 2) process-wide override beats the env var
        try:
            set_default_backend("numpy")
            assert default_backend_name() == "numpy"
        finally:
            set_default_backend(None)
        # the context-manager form restores on exit
        with backend_scope("numpy") as backend:
            assert backend.name == "numpy"
            assert resolve_backend().name == "numpy"
        assert default_backend_name() == "numpy-blocked"

    def test_simulation_config_validates_backend(self):
        SimulationConfig(backend="numpy-blocked")
        SimulationConfig(backend=None)
        with pytest.raises(ValueError, match="did you mean"):
            SimulationConfig(backend="nmpy")

    def test_unavailable_backend_reports_cleanly(self):
        for row in _unavailable_backends():
            assert row["error"], f"{row['backend']} must explain its unavailability"
            with pytest.raises(BackendUnavailableError):
                get_backend(row["backend"])

    def test_metadata_lists_every_registration(self):
        rows = backend_metadata()
        assert [row["backend"] for row in rows] == backend_names()
        defaults = [row for row in rows if row["default"]]
        assert len(defaults) == 1 and defaults[0]["backend"] == "numpy"


class TestBackendParity:
    """Golden suite: prediction agreement across backends × schemes × dtypes."""

    @pytest.mark.parametrize("notation", PARITY_SCHEMES)
    @pytest.mark.parametrize("dtype", PARITY_DTYPES)
    def test_backends_agree_with_reference(
        self, parity_snn_factory, tiny_color_split, notation, dtype
    ):
        x = tiny_color_split.test.x[:8]
        config = SimulationConfig(time_steps=50, dtype=dtype, backend="numpy")
        snn = parity_snn_factory(notation)
        reference = snn.run(x, config)
        ref_predictions = reference.predictions()
        ref_spikes = reference.total_spikes()
        assert ref_spikes > 0
        for row in backend_metadata():
            if row["backend"] == "numpy":
                continue
            if not row["available"]:
                # graceful skip is part of the contract — record, don't fail
                continue
            result = snn.run(x, config.replace(backend=row["backend"]))
            assert np.array_equal(result.predictions(), ref_predictions), (
                f"{row['backend']} backend diverged from numpy predictions "
                f"({notation}, {dtype})"
            )
            spikes = result.total_spikes()
            assert abs(spikes - ref_spikes) <= max(5, 0.01 * ref_spikes), (
                f"{row['backend']} spike count drifted ({notation}, {dtype}): "
                f"{spikes} vs {ref_spikes}"
            )

    def test_unavailable_backend_is_skipped_not_run(self, parity_snn_factory, tiny_color_split):
        """Resolving an unavailable backend fails fast with a clean error."""
        rows = _unavailable_backends()
        if not rows:
            pytest.skip("every registered backend is available here")
        snn = parity_snn_factory("phase-burst")
        config = SimulationConfig(time_steps=5, backend=rows[0]["backend"])
        with pytest.raises(BackendUnavailableError):
            snn.run(tiny_color_split.test.x[:2], config)


class TestNumpyReferenceBitIdentity:
    """The explicitly resolved numpy backend IS the engine default, bit for bit.

    Together with ``tests/test_dtype_policy.py`` (which pins the default
    engine's float64 outputs to ``benchmarks/perf/seed_reference.json``),
    this keeps the numpy backend's float64 output bit-identical to the seed.
    """

    @pytest.mark.parametrize("dtype", PARITY_DTYPES)
    def test_explicit_numpy_equals_default(self, parity_snn_factory, tiny_color_split, dtype):
        x = tiny_color_split.test.x[:6]
        snn = parity_snn_factory("phase-burst")
        default = snn.run(x, SimulationConfig(time_steps=40, dtype=dtype))
        explicit = snn.run(x, SimulationConfig(time_steps=40, dtype=dtype, backend="numpy"))
        assert np.array_equal(default.output_history, explicit.output_history)
        assert default.total_spikes() == explicit.total_spikes()

    def test_numpy_float64_runs_are_bit_deterministic(self, parity_snn_factory, tiny_color_split):
        x = tiny_color_split.test.x[:6]
        snn = parity_snn_factory("real-burst")
        config = SimulationConfig(time_steps=40, dtype="float64", backend="numpy")
        a = snn.run(x, config)
        b = snn.run(x, config)
        assert np.array_equal(a.output_history, b.output_history)


class TestCalibrationCacheKeying:
    def test_crossover_cache_is_keyed_by_backend(self, parity_snn_factory, tiny_color_split):
        """Resetting the same geometry under two backends must create two
        cache entries (never share one timing-probed crossover)."""
        from repro.utils.sparsity import (
            calibration_cache_snapshot,
            clear_calibration_cache,
        )

        clear_calibration_cache()
        try:
            x = tiny_color_split.test.x[:4]
            snn = parity_snn_factory("phase-burst")
            config = SimulationConfig(time_steps=4, dtype="float32")
            snn.run(x, config.replace(backend="numpy"))
            keys_numpy = set(calibration_cache_snapshot())
            snn.run(x, config.replace(backend="numpy-blocked"))
            keys_both = set(calibration_cache_snapshot())
            assert keys_numpy, "float32 reset must calibrate at least one layer"
            assert all("numpy" in key for key in keys_numpy)
            added = keys_both - keys_numpy
            assert added and all("numpy-blocked" in key for key in added)
        finally:
            clear_calibration_cache()

    def test_layer_cache_key_carries_backend_name(self):
        """The dispatcher cache key a layer builds includes its backend."""
        from repro.snn.layers import SpikingDense
        from repro.snn.thresholds import BurstThreshold
        from repro.utils.sparsity import (
            calibration_cache_snapshot,
            clear_calibration_cache,
        )

        rng = np.random.default_rng(0)
        layer = SpikingDense(
            rng.normal(size=(32, 16)), None, BurstThreshold(v_th=0.125)
        )
        clear_calibration_cache()
        try:
            layer.reset(4, dtype="float32", backend="numpy-blocked")
            keys = list(calibration_cache_snapshot())
            assert keys and any("numpy-blocked" in key for key in keys)
        finally:
            clear_calibration_cache()


class TestBlockedBackendKernels:
    def test_tiled_matmul_matches_monolithic(self):
        from repro.backends.blocked import BlockedNumpyBackend

        backend = BlockedNumpyBackend(min_rows=8, threads=1)
        rng = np.random.default_rng(3)
        a = rng.standard_normal((100, 17)).astype(np.float32)
        b = rng.standard_normal((17, 23)).astype(np.float32)
        out = np.empty((100, 23), dtype=np.float32)
        backend.matmul(a, b, out)
        assert np.allclose(out, a @ b, rtol=1e-5, atol=1e-6)

    def test_threaded_tiling_matches_sequential(self):
        from repro.backends.blocked import BlockedNumpyBackend

        rng = np.random.default_rng(4)
        a = rng.standard_normal((64, 9)).astype(np.float64)
        b = rng.standard_normal((9, 5)).astype(np.float64)
        sequential = BlockedNumpyBackend(min_rows=8, threads=1)
        threaded = BlockedNumpyBackend(min_rows=8, threads=3)
        out_seq = np.empty((64, 5))
        out_thr = np.empty((64, 5))
        sequential.matmul(a, b, out_seq)
        threaded.matmul(a, b, out_thr)
        assert np.array_equal(out_seq, out_thr)

    def test_small_gemm_runs_unsplit(self):
        from repro.backends.blocked import BlockedNumpyBackend

        backend = BlockedNumpyBackend(min_rows=64, threads=1)
        a = np.ones((4, 3))
        b = np.ones((3, 2))
        out = np.empty((4, 2))
        backend.matmul(a, b, out)
        assert np.array_equal(out, a @ b)


class TestFusedStepPrograms:
    """Fused per-step kernel programs (``repro.backends.programs``).

    Three guarantees: fused programs are what the engine runs by default
    (and compile to actually-fused objects on the numpy backends); they
    reproduce the composed per-kernel path bit for bit on the numpy
    backends (prediction-level on torch); and they genuinely collapse the
    backend seam — far fewer counted backend invocations per layer per
    step than the composed path.
    """

    FUSED_BACKENDS = ("numpy", "numpy-blocked", "torch")

    @staticmethod
    def _profile_stack():
        from repro.snn.layers import (
            OutputAccumulator,
            SpikingAvgPool2D,
            SpikingConv2D,
            SpikingDense,
            SpikingFlatten,
            SpikingMaxPool2D,
        )
        from repro.snn.thresholds import BurstThreshold

        rng = np.random.default_rng(11)
        layers = [
            SpikingConv2D(
                rng.normal(scale=0.1, size=(4, 4, 3, 3)),
                rng.normal(scale=0.1, size=4),
                BurstThreshold(v_th=0.125),
                padding=1,
                input_shape=(4, 8, 8),
                name="conv",
            ),
            SpikingAvgPool2D(2, name="avgpool"),
            SpikingMaxPool2D(2, name="maxpool"),
            SpikingFlatten(name="flatten"),
            SpikingDense(
                rng.normal(scale=0.1, size=(4 * 2 * 2, 12)),
                rng.normal(scale=0.05, size=12),
                BurstThreshold(v_th=0.125),
                name="dense",
            ),
            OutputAccumulator(
                rng.normal(scale=0.1, size=(12, 4)),
                rng.normal(scale=0.05, size=4),
                name="output",
            ),
        ]
        x = np.asarray((rng.random((4, 4, 8, 8)) < 0.3) * 0.125, dtype=np.float32)
        return layers, x

    @staticmethod
    def _count_seam_calls(layers, x, fused: bool, steps: int = 8) -> int:
        from repro.backends import fused_scope, get_backend
        from repro.backends.instrument import InstrumentedBackend

        backend = InstrumentedBackend(get_backend("numpy"))
        with fused_scope(fused):
            for layer in layers:
                layer.reset(x.shape[0], dtype="float32", backend=backend)
            programs = [layer.ensure_step_program() for layer in layers]
            assert all(program.fused == fused for program in programs)

            def one_step(t):
                values, hint = x, None
                for layer, program in zip(layers, programs):
                    layer.output_nonzero = None
                    values = program.run(values, t, hint)
                    hint = layer.output_nonzero

            one_step(0)  # lazy buffer builds happen outside the counted region
            backend.recorder.reset()
            for t in range(1, 1 + steps):
                one_step(t)
        snapshot = backend.recorder.snapshot()
        return sum(
            entry["calls"]
            for name, entry in snapshot.items()
            if not name.startswith("program:")
        ), steps, len(layers)

    def test_fused_path_collapses_backend_seam(self):
        """≤ 2 counted backend invocations per layer per step when fused,
        and a large multiple of that on the composed path."""
        layers, x = self._profile_stack()
        composed, steps, n_layers = self._count_seam_calls(layers, x, fused=False)
        fused, _, _ = self._count_seam_calls(layers, x, fused=True)
        assert fused <= 2 * n_layers * steps, (
            f"fused path crossed the seam {fused} times over {steps} steps × "
            f"{n_layers} layers — programs are not fusing the kernel chains"
        )
        assert composed >= 2 * fused, (
            f"composed path made {composed} backend calls vs {fused} fused — "
            "the instrumented comparison lost its contrast"
        )

    def test_fused_is_the_default_and_scope_restores(self):
        from repro.backends import fused_programs_enabled, fused_scope

        assert fused_programs_enabled()
        with fused_scope(False):
            assert not fused_programs_enabled()
        assert fused_programs_enabled()

    @pytest.mark.parametrize("notation", PARITY_SCHEMES)
    @pytest.mark.parametrize("dtype", PARITY_DTYPES)
    @pytest.mark.parametrize("backend", FUSED_BACKENDS)
    def test_fused_matches_composed(
        self, parity_snn_factory, tiny_color_split, notation, dtype, backend
    ):
        """Fused programs replay the composed path's exact kernel sequences:
        bit-identical histories and spike counts on the numpy backends (the
        float64 rows are the bit-identity gate — the composed float64 path is
        pinned to the seed reference by ``tests/test_dtype_policy.py``);
        prediction-level agreement on torch."""
        from repro.backends import fused_scope

        if backend not in _available_backends():
            pytest.skip(f"{backend} backend unavailable here")
        x = tiny_color_split.test.x[:6]
        snn = parity_snn_factory(notation)
        config = SimulationConfig(time_steps=30, dtype=dtype, backend=backend)
        with fused_scope(False):
            composed = snn.run(x, config)
        with fused_scope(True):
            fused = snn.run(x, config)
        if backend == "torch":
            assert np.array_equal(composed.predictions(), fused.predictions())
            spikes_c, spikes_f = composed.total_spikes(), fused.total_spikes()
            assert abs(spikes_f - spikes_c) <= max(5, 0.01 * spikes_c)
        else:
            assert np.array_equal(composed.output_history, fused.output_history), (
                f"{backend} fused output diverged from composed ({notation}, {dtype})"
            )
            assert composed.total_spikes() == fused.total_spikes()

    def test_blocked_tiled_fused_dense_matches_composed(self):
        """The blocked backend's tiled fused dense program (whole chain
        sharded per row block) is bit-identical to the composed path on the
        same backend, sequential and threaded."""
        from repro.backends import fused_scope
        from repro.backends.blocked import BlockedNumpyBackend, _BlockedFusedDenseProgram
        from repro.snn.layers import SpikingDense
        from repro.snn.thresholds import BurstThreshold

        rng = np.random.default_rng(7)
        w = rng.normal(scale=0.1, size=(24, 16))
        bias = rng.normal(scale=0.05, size=16)
        steps = 12
        batch = 12
        x = np.asarray(
            (rng.random((steps, batch, 24)) < 0.3) * 0.125, dtype=np.float64
        )
        for threads in (1, 3):
            backend = BlockedNumpyBackend(min_rows=3, threads=threads)
            histories = {}
            spikes = {}
            for fused in (False, True):
                layer = SpikingDense(w, bias, BurstThreshold(v_th=0.125), name="dense")
                with fused_scope(fused):
                    layer.reset(batch, dtype="float64", backend=backend)
                    program = layer.ensure_step_program()
                    if fused:
                        assert type(program) is _BlockedFusedDenseProgram
                    history = [
                        np.array(program.run(x[t], t, None)) for t in range(steps)
                    ]
                histories[fused] = np.stack(history)
                spikes[fused] = int(layer.state.total_spikes)
            assert np.array_equal(histories[False], histories[True]), (
                f"tiled fused dense diverged from composed (threads={threads})"
            )
            assert spikes[False] == spikes[True]

    def test_composed_fallback_for_minimal_backend(self):
        """A backend that only implements the unfused primitives still works:
        its layers run on ``ComposedStepProgram`` (base-class fallback)."""
        from repro.backends import ComposedStepProgram
        from repro.backends.numpy_backend import NumpyBackend
        from repro.snn.layers import SpikingDense
        from repro.snn.thresholds import BurstThreshold

        class MinimalBackend(NumpyBackend):
            name = "minimal-test"
            description = "primitives only (test double)"

            def compile_step_program(self, layer):  # the base-class default
                from repro.backends.base import KernelBackend

                return KernelBackend.compile_step_program(self, layer)

        rng = np.random.default_rng(5)
        layer = SpikingDense(
            rng.normal(scale=0.1, size=(16, 8)), None, BurstThreshold(v_th=0.125)
        )
        layer.reset(4, dtype="float32", backend=MinimalBackend())
        program = layer.ensure_step_program()
        assert type(program) is ComposedStepProgram and not program.fused
        x = np.asarray((rng.random((4, 16)) < 0.4) * 0.125, dtype=np.float32)
        out = program.run(x, 0, None)
        assert out.shape == (4, 8)

    def test_programs_invalidate_on_reset_and_shrink(self):
        from repro.snn.layers import SpikingDense
        from repro.snn.thresholds import BurstThreshold

        rng = np.random.default_rng(6)
        layer = SpikingDense(
            rng.normal(scale=0.1, size=(16, 8)), None, BurstThreshold(v_th=0.125)
        )
        layer.reset(4, dtype="float32", backend="numpy")
        program = layer.ensure_step_program()
        assert layer.ensure_step_program() is program  # cached while valid
        layer.reset(4, dtype="float32", backend="numpy")
        assert layer._program is None  # reset invalidates
        rebuilt = layer.ensure_step_program()
        layer.shrink_batch(np.array([0, 2]))
        assert layer._program is None  # shrink invalidates (stale buffer views)
        assert layer.ensure_step_program() is not rebuilt


class TestBackendSwitchInvalidation:
    def test_dense_buffers_rebuilt_on_backend_switch(self):
        from repro.snn.layers import SpikingDense
        from repro.snn.thresholds import BurstThreshold

        rng = np.random.default_rng(1)
        layer = SpikingDense(rng.normal(size=(16, 8)), None, BurstThreshold(v_th=0.125))
        layer.reset(4, dtype="float32", backend="numpy")
        z_numpy, state_numpy = layer._z, layer.state
        # same backend, same geometry: buffers and neuron state are reused
        layer.reset(4, dtype="float32", backend="numpy")
        assert layer._z is z_numpy and layer.state is state_numpy
        # backend switch: everything the old backend built is rebuilt
        layer.reset(4, dtype="float32", backend="numpy-blocked")
        assert layer.backend_changed
        assert layer._z is not z_numpy and layer.state is not state_numpy
        assert layer.ops.name == "numpy-blocked"

    def test_conv_plans_rebuilt_on_backend_switch(self):
        from repro.snn.layers import SpikingConv2D
        from repro.snn.thresholds import BurstThreshold

        rng = np.random.default_rng(2)
        layer = SpikingConv2D(
            rng.normal(scale=0.1, size=(4, 3, 3, 3)), None,
            BurstThreshold(v_th=0.125), padding=1, input_shape=(3, 8, 8),
        )
        layer.reset(2, dtype="float32", backend="numpy")
        x = np.asarray(rng.random((2, 3, 8, 8)) < 0.4, dtype=np.float32) * 0.125
        layer.step(x, 0)
        plan_numpy = layer._plan or layer._direct
        layer.reset(2, dtype="float32", backend="numpy-blocked")
        layer.step(x, 0)
        assert (layer._plan or layer._direct) is not plan_numpy

    def test_switching_backends_preserves_results(self, parity_snn_factory, tiny_color_split):
        """numpy → blocked → numpy on one network: the final numpy run must
        be bit-identical to the first (no stale cross-backend state)."""
        x = tiny_color_split.test.x[:4]
        snn = parity_snn_factory("phase-burst")
        config = SimulationConfig(time_steps=30, dtype="float64")
        first = snn.run(x, config.replace(backend="numpy"))
        snn.run(x, config.replace(backend="numpy-blocked"))
        again = snn.run(x, config.replace(backend="numpy"))
        assert np.array_equal(first.output_history, again.output_history)
        assert first.total_spikes() == again.total_spikes()
