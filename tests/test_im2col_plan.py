"""Tests for the cached im2col plan and the pooling fast paths.

The zero-allocation engine replaces per-step ``im2col`` calls with cached
:class:`~repro.ann.im2col.Im2colPlan` objects and replaces 2×2 pooling with
strided slab arithmetic.  These tests pin the load-bearing equivalences:

* a plan's column buffer equals ``im2col``'s output bit for bit, for both
  copy strategies, across geometries (padding, stride, odd sizes);
* repeated fills reuse the same buffer (the zero-allocation contract);
* the spiking avg/max pooling layers match the original unfold-based
  formulation exactly in float64, including the cumulative-evidence gating
  and argmax tie-breaking of max pooling.
"""

import numpy as np
import pytest

from repro.ann.im2col import Im2colPlan, im2col
from repro.snn.layers import SpikingAvgPool2D, SpikingMaxPool2D


GEOMETRIES = [
    # (n, c, h, w, kernel, stride, padding)
    (2, 3, 8, 8, 3, 1, 1),
    (1, 1, 6, 6, 2, 2, 0),
    (2, 8, 5, 7, 3, 1, 0),
    (1, 4, 9, 9, 3, 2, 1),
    (3, 1, 4, 4, 4, 4, 0),
    (1, 2, 5, 5, 2, 1, 2),
]


class TestIm2colPlan:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matches_one_shot_im2col(self, geometry, dtype):
        n, c, h, w, k, s, p = geometry
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, c, h, w)).astype(dtype)
        plan = Im2colPlan(n, c, h, w, k, k, s, p, dtype=dtype)
        cols = plan.fill(x)
        expected, out_h, out_w = im2col(x.astype(np.float64), k, k, s, p)
        assert plan.out_h == out_h and plan.out_w == out_w
        assert cols.shape == expected.shape
        assert np.array_equal(cols, expected.astype(dtype))

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_both_copy_strategies_agree(self, geometry):
        n, c, h, w, k, s, p = geometry
        rng = np.random.default_rng(1)
        x = rng.normal(size=(n, c, h, w))
        plan = Im2colPlan(n, c, h, w, k, k, s, p, dtype=np.float64)
        forced = Im2colPlan(n, c, h, w, k, k, s, p, dtype=np.float64)
        forced._use_slabs = not plan._use_slabs
        a = plan.fill(x).copy()
        b = forced.fill(x)
        assert np.array_equal(a, b)

    def test_fill_reuses_buffer(self):
        plan = Im2colPlan(1, 2, 6, 6, 3, 3, 1, 1, dtype=np.float32)
        x = np.random.default_rng(2).random((1, 2, 6, 6)).astype(np.float32)
        first = plan.fill(x)
        second = plan.fill(x * 2)
        assert first is second  # same preallocated buffer

    def test_padding_border_stays_zero(self):
        plan = Im2colPlan(1, 1, 3, 3, 3, 3, 1, 1, dtype=np.float64)
        x = np.ones((1, 1, 3, 3))
        cols = plan.fill(x)
        # corner window: only the bottom-right 2x2 of the kernel sees input
        assert cols[0].sum() == 4.0
        plan.fill(x)  # refill must not accumulate into the border
        assert cols[0].sum() == 4.0

    def test_shape_mismatch_rejected(self):
        plan = Im2colPlan(1, 1, 4, 4, 2, 2, 2, 0, dtype=np.float64)
        with pytest.raises(ValueError):
            plan.fill(np.zeros((1, 1, 5, 5)))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Im2colPlan(0, 1, 4, 4, 2, 2, 1, 0)


def _seed_avg_pool(x, pool, stride):
    """The original unfold-based average pooling."""
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(x.reshape(n * c, 1, h, w), pool, pool, stride, 0)
    return cols.mean(axis=1).reshape(n, c, out_h, out_w)


def _seed_max_pool_gate(cumulative, incoming, pool, stride):
    """The original two-unfold cumulative-evidence gating."""
    n, c, h, w = incoming.shape
    cum_cols, out_h, out_w = im2col(cumulative.reshape(n * c, 1, h, w), pool, pool, stride, 0)
    in_cols, _, _ = im2col(incoming.reshape(n * c, 1, h, w), pool, pool, stride, 0)
    winners = cum_cols.argmax(axis=1)
    return in_cols[np.arange(in_cols.shape[0]), winners].reshape(n, c, out_h, out_w)


class TestPoolingFastPaths:
    @pytest.mark.parametrize("shape", [(2, 3, 8, 8), (1, 1, 6, 6), (2, 2, 5, 5), (1, 4, 7, 9)])
    def test_avg_pool_matches_seed_formulation_exactly(self, shape):
        rng = np.random.default_rng(3)
        x = rng.random(shape)
        layer = SpikingAvgPool2D(2)
        layer.reset(shape[0], dtype=np.float64)
        out = layer.step(x, 0)
        assert np.array_equal(out, _seed_avg_pool(x, 2, 2))

    def test_avg_pool_non_default_stride_uses_plan_path(self):
        rng = np.random.default_rng(4)
        x = rng.random((1, 2, 6, 6))
        layer = SpikingAvgPool2D(3, stride=1)
        layer.reset(1, dtype=np.float64)
        out = layer.step(x, 0)
        assert np.array_equal(out, _seed_avg_pool(x, 3, 1))

    @pytest.mark.parametrize("shape", [(2, 3, 8, 8), (1, 1, 2, 2), (2, 2, 5, 5)])
    def test_max_pool_matches_seed_gating_exactly(self, shape):
        rng = np.random.default_rng(5)
        layer = SpikingMaxPool2D(2)
        layer.reset(shape[0], dtype=np.float64)
        cumulative = np.zeros(shape)
        for t in range(6):
            incoming = rng.random(shape)
            cumulative += incoming
            out = layer.step(incoming, t)
            assert np.array_equal(out, _seed_max_pool_gate(cumulative, incoming, 2, 2)), t

    def test_max_pool_argmax_tie_breaks_to_first(self):
        """Equal cumulative evidence must forward the first window element,
        exactly like np.argmax in the original implementation."""
        layer = SpikingMaxPool2D(2)
        layer.reset(1, dtype=np.float64)
        incoming = np.array([[[[0.5, 0.5], [0.5, 0.5]]]])  # all-tied window
        out = layer.step(incoming, 0)
        marked = np.array([[[[0.0, 1.0], [2.0, 3.0]]]])
        out = layer.step(marked, 1)  # cumulative still tied at 0.5+...
        # cumulative after step 1: [0.5, 1.5, 2.5, 3.5] -> winner is (1,1)
        assert out[0, 0, 0, 0] == 3.0

    def test_buffers_rebuilt_across_batch_sizes(self):
        layer = SpikingAvgPool2D(2)
        rng = np.random.default_rng(6)
        for batch in (1, 3, 2):
            layer.reset(batch, dtype=np.float64)
            x = rng.random((batch, 2, 4, 4))
            out = layer.step(x, 0)
            assert out.shape == (batch, 2, 2, 2)
            assert np.array_equal(out, _seed_avg_pool(x, 2, 2))
