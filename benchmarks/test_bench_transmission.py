"""Extension bench: quantitative information-transmission efficiency.

The paper argues qualitatively (Section 2.2 / Fig. 1) that rate coding needs
``2^k`` time steps for ``k``-bit precision while burst coding adapts its spike
budget to the value being transmitted.  This bench states that argument
quantitatively on a single neuron: for a set of activation values it measures
the number of steps and spikes each coding needs to transmit the value to a
fixed precision, and the effective bits-per-spike.

All codings use the same spike quantum (v_th = 0.125), which is the
apples-to-apples setting of Section 3.1.  Expected shape: rate coding's
throughput is capped at v_th per step, so it cannot transmit values above the
cap to the target precision; phase coding's per-period budget caps it even
lower; burst coding transmits every value, with more bits per spike than rate
coding for the large values.
"""

from repro.analysis.information import compare_codings
from repro.utils.tables import Table

VALUES = (0.1, 0.3, 0.6, 0.9)
TARGET_ERROR = 1 / 64  # ~6-bit precision
TIME_STEPS = 512
V_TH = 0.125


def test_bench_transmission_efficiency(benchmark, save_result):
    table_data = benchmark.pedantic(
        lambda: compare_codings(
            VALUES,
            codings=("rate", "phase", "burst"),
            time_steps=TIME_STEPS,
            target_error=TARGET_ERROR,
            v_th=V_TH,
        ),
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["coding", "value", "steps to 6-bit", "spikes to 6-bit", "total spikes", "bits/spike"],
        title="Single-neuron transmission efficiency (extension of Fig. 1)",
    )
    for coding, per_value in table_data.items():
        for value, summary in per_value.items():
            table.add_row(
                {
                    "coding": coding,
                    "value": value,
                    "steps to 6-bit": summary.steps_to_target
                    if summary.steps_to_target is not None
                    else f">{TIME_STEPS}",
                    "spikes to 6-bit": summary.spikes_to_target
                    if summary.spikes_to_target is not None
                    else "-",
                    "total spikes": summary.total_spikes,
                    "bits/spike": round(summary.bits_per_spike, 3),
                }
            )
    save_result("transmission_efficiency", table.render())

    # burst coding transmits every value to the target precision
    for value in VALUES:
        assert table_data["burst"][value].steps_to_target is not None

    # rate coding's bounded throughput (v_th per step) cannot transmit the
    # values above the cap, and phase coding's per-period budget is lower still
    for value in (0.3, 0.6, 0.9):
        assert table_data["rate"][value].steps_to_target is None
        assert table_data["phase"][value].steps_to_target is None
        # burst reaches the precision with strictly better bits-per-spike
        assert (
            table_data["burst"][value].bits_per_spike
            > table_data["rate"][value].bits_per_spike
        )

    # for a value below the cap, rate coding works too but needs at least as
    # many spikes as burst coding
    below_cap = table_data["rate"][0.1]
    assert below_cap.steps_to_target is not None
    assert table_data["burst"][0.1].total_spikes <= below_cap.total_spikes * 1.1
