"""The layer-wise hybrid neural coding scheme (Section 3.2).

The paper's key observation is that input and hidden layers have different
transmission requirements: the input layer must transmit a *static, bounded*
value quickly and precisely (real or phase coding), while hidden layers must
*adapt the transmission amount dynamically* (burst coding).  A
:class:`HybridCodingScheme` captures one "input-hidden" combination (the
paper's ``phase-burst`` notation), and knows how to build the matching input
encoder and hidden-layer threshold dynamics for the converter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.core import registry
from repro.core.coding import CodingParams, NeuralCoding
from repro.conversion.converter import ThresholdFactory
from repro.utils.config import FrozenConfig
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.snn.encoding import InputEncoder
    from repro.snn.thresholds import ThresholdDynamics


@dataclass(frozen=True)
class HybridCodingScheme(FrozenConfig):
    """One input/hidden coding combination, e.g. ``phase-burst``.

    Attributes
    ----------
    input_coding:
        Coding of the input layer (``real``, ``rate``, ``phase`` or ``burst``).
    hidden_coding:
        Coding of every hidden layer (``rate``, ``phase`` or ``burst``).
    input_params / hidden_params:
        Scheme parameters (thresholds, burst constant, phase period).
    """

    input_coding: NeuralCoding = NeuralCoding.PHASE
    hidden_coding: NeuralCoding = NeuralCoding.BURST
    input_params: CodingParams = field(default_factory=CodingParams)
    hidden_params: CodingParams = field(default_factory=CodingParams)

    def __post_init__(self) -> None:
        object.__setattr__(self, "input_coding", NeuralCoding.from_value(self.input_coding))
        object.__setattr__(self, "hidden_coding", NeuralCoding.from_value(self.hidden_coding))
        if not self.hidden_coding.valid_for_hidden:
            raise ValueError(
                f"{self.hidden_coding.value!r} coding has no hidden-layer threshold "
                "dynamics and is only valid for the input layer "
                f"(hidden codings: {', '.join(registry.hidden_codings())})"
            )
        if not registry.get(self.input_coding.value).valid_for_input:
            raise ValueError(
                f"{self.input_coding.value!r} coding has no input encoder; "
                f"input codings: {', '.join(registry.input_codings())}"
            )

    # -- construction helpers --------------------------------------------
    @classmethod
    def from_notation(
        cls,
        notation: str,
        v_th: Optional[float] = None,
        beta: float = 2.0,
        phase_period: int = 8,
        input_v_th: Optional[float] = None,
        max_burst_length: Optional[int] = None,
    ) -> "HybridCodingScheme":
        """Build a scheme from the paper's ``"input-hidden"`` notation.

        Parameters
        ----------
        notation:
            For example ``"phase-burst"`` or ``"real-rate"``.
        v_th:
            Hidden-layer base threshold (``None`` = per-coding default).
        input_v_th:
            Input-layer threshold / amplitude scale (``None`` = default).
        """
        parts = notation.lower().split("-")
        if len(parts) != 2:
            raise ValueError(
                f"notation must be of the form 'input-hidden' (e.g. 'phase-burst'), got {notation!r}"
            )
        input_coding = NeuralCoding.from_value(parts[0])
        hidden_coding = NeuralCoding.from_value(parts[1])
        return cls(
            input_coding=input_coding,
            hidden_coding=hidden_coding,
            input_params=CodingParams(
                v_th=input_v_th, beta=beta, phase_period=phase_period
            ),
            hidden_params=CodingParams(
                v_th=v_th,
                beta=beta,
                phase_period=phase_period,
                max_burst_length=max_burst_length,
            ),
        )

    @property
    def notation(self) -> str:
        """The paper's "input-hidden" notation for this scheme."""
        return f"{self.input_coding.value}-{self.hidden_coding.value}"

    # -- factories handed to the converter --------------------------------
    def make_encoder(self, seed: SeedLike = None) -> "InputEncoder":
        """Build the input encoder implementing the input-layer coding.

        Resolution goes through the scheme registry, so registered extensions
        (e.g. TTFS) build here without this class enumerating them.
        """
        return registry.build_encoder(self.input_coding.value, params=self.input_params, seed=seed)

    def make_threshold_factory(self) -> ThresholdFactory:
        """Build the callback producing hidden-layer threshold dynamics.

        Each hidden layer receives its *own* dynamics object (burst adaptation
        is per-neuron state and must not be shared across layers).
        """
        params = self.hidden_params
        coding_name = self.hidden_coding.value

        def factory(hidden_index: int, layer_name: str) -> "ThresholdDynamics":
            del hidden_index, layer_name
            return registry.build_threshold(coding_name, params=params)

        return factory

    def describe(self) -> str:
        return (
            f"{self.notation} (hidden v_th={self.hidden_params.resolved_v_th(self.hidden_coding)}, "
            f"beta={self.hidden_params.beta}, k={self.hidden_params.phase_period})"
        )


def table1_schemes(
    v_th: Optional[float] = None,
    beta: float = 2.0,
    phase_period: int = 8,
    specs: Optional[List[str]] = None,
) -> List[HybridCodingScheme]:
    """The coding combinations evaluated in the Table 1 sweep.

    The list is assembled through the scheme registry
    (:func:`repro.core.registry.expand_scheme_specs`), defaulting to the full
    ``all`` product — every registered input coding crossed with every
    registered hidden coding.  The paper's nine combinations (real/rate/phase
    × rate/phase/burst) are always a subset; registered extensions (e.g.
    TTFS input coding) appear in the sweep automatically, exactly as they do
    in ``repro compare --schemes all``.

    ``v_th`` is the *burst* base threshold (the quantity the paper sweeps);
    other hidden codings keep their registered default threshold.  ``specs``
    narrows or reorders the sweep with any registry product notation (e.g.
    ``["phase:all"]``).
    """
    schemes = []
    for notation in registry.expand_scheme_specs(specs or ["all"]):
        hidden_coding = notation.split("-")[1]
        schemes.append(
            HybridCodingScheme.from_notation(
                notation,
                v_th=v_th if hidden_coding == "burst" else None,
                beta=beta,
                phase_period=phase_period,
            )
        )
    return schemes


def standard_schemes() -> List[HybridCodingScheme]:
    """The headline schemes compared throughout the paper.

    ``phase-burst`` (the proposed hybrid), ``real-burst`` (fastest), the
    phase-coding baseline of Kim et al. (``phase-phase``), the rate-coding
    baselines (``rate-rate``, ``real-rate``).
    """
    return [
        HybridCodingScheme.from_notation("phase-burst"),
        HybridCodingScheme.from_notation("real-burst"),
        HybridCodingScheme.from_notation("phase-phase"),
        HybridCodingScheme.from_notation("real-rate"),
        HybridCodingScheme.from_notation("rate-rate"),
    ]
