"""Table 2: comparison with prior conversion methods on MNIST / CIFAR-10 /
CIFAR-100 — accuracy, latency, spikes, spiking density and normalized energy.

The prior methods are represented by the coding scheme they use (the paper
itself re-implements them on its own models for the fair-comparison rows
marked "c"):

* Cao et al. 2015 / Diehl et al. 2015 — rate input + rate hidden coding,
* Rueckauer et al. 2016 — real input + rate hidden coding,
* Kim et al. 2018 (weighted spikes) — phase input + phase hidden coding,
* Ours — real/phase input + burst hidden coding, for two values of ``v_th``.

Normalised energy is computed with the proportional TrueNorth / SpiNNaker
model of :mod:`repro.energy`, normalised per dataset against the same baseline
the paper uses (Diehl for MNIST, Rueckauer for CIFAR-10, Kim for CIFAR-100).
The qualitative shape to reproduce: the burst-coding rows reach the DNN
accuracy with the lowest spiking density and the lowest energy, while the
phase-phase rows spend by far the most spikes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.curves import latency_to_target, spikes_to_target
from repro.analysis.density import spiking_density
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import AggregatedRun
from repro.energy.architectures import SPINNAKER, TRUENORTH
from repro.energy.estimator import EnergyWorkload, estimate_energy
from repro.experiments.reporting import render_table
from repro.experiments.sweep import make_pipeline
from repro.experiments.workloads import (
    Workload,
    cifar10_workload,
    cifar100_workload,
    mnist_workload,
)


@dataclass(frozen=True)
class MethodSpec:
    """One method row of Table 2."""

    label: str
    notation: str
    v_th: Optional[float] = None
    is_baseline: bool = False

    def scheme(self) -> HybridCodingScheme:
        return HybridCodingScheme.from_notation(self.notation, v_th=self.v_th)


def _expand_methods(*rows: tuple) -> "Sequence[MethodSpec]":
    """Expand ``(label, spec, v_th, is_baseline)`` rows through the registry.

    Each row's *spec* goes through
    :func:`repro.core.registry.expand_scheme_specs`, so a method row can name
    a registry product (``all-input:burst`` — one row per expanded notation,
    labelled with the notation) as well as a plain notation, and unknown
    codings fail with the registry's did-you-mean error at import time rather
    than mid-experiment.
    """
    from repro.core.registry import expand_scheme_specs

    methods = []
    for label, spec, v_th, is_baseline in rows:
        notations = expand_scheme_specs([spec])
        for notation in notations:
            row_label = label if len(notations) == 1 else f"{label} [{notation}]"
            methods.append(MethodSpec(row_label, notation, v_th=v_th, is_baseline=is_baseline))
    return tuple(methods)


#: the method rows evaluated per dataset (mirrors Table 2's structure); the
#: notations are resolved through the scheme registry, not hard-coded tuples
TABLE2_METHODS: Dict[str, Sequence[MethodSpec]] = {
    "mnist": _expand_methods(
        ("Diehl et al. 2015", "rate:rate", None, True),
        ("Kim et al. 2018", "phase:phase", None, False),
        ("Ours (v_th=0.125)", "real:burst", 0.125, False),
        ("Ours (v_th=0.0625)", "real:burst", 0.0625, False),
    ),
    "cifar10": _expand_methods(
        ("Cao et al. 2015", "rate:rate", None, False),
        ("Rueckauer et al. 2016", "real:rate", None, True),
        ("Kim et al. 2018", "phase:phase", None, False),
        ("Ours (v_th=0.125)", "phase:burst", 0.125, False),
        ("Ours (v_th=0.0625)", "phase:burst", 0.0625, False),
    ),
    "cifar100": _expand_methods(
        ("Kim et al. 2018", "phase:phase", None, True),
        ("Ours (v_th=0.125)", "phase:burst", 0.125, False),
    ),
}


@dataclass
class Table2Row:
    """One row of Table 2."""

    dataset: str
    method: str
    input_coding: str
    hidden_coding: str
    num_neurons: int
    dnn_accuracy: float
    snn_accuracy: float
    latency: Optional[int]
    time_steps: int
    spikes_per_image: float
    density: float
    total_spikes_per_image: float = 0.0
    energy_truenorth: Optional[float] = None
    energy_spinnaker: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "method": self.method,
            "input": self.input_coding,
            "hidden": self.hidden_coding,
            "neurons": self.num_neurons,
            "DNN_%": round(self.dnn_accuracy * 100.0, 2),
            "SNN_%": round(self.snn_accuracy * 100.0, 2),
            "latency": self.latency if self.latency is not None else f">{self.time_steps}",
            "spikes/image": round(self.spikes_per_image, 1),
            "spikes/image@budget": round(self.total_spikes_per_image, 1),
            "density": round(self.density, 5),
            "E_TrueNorth": round(self.energy_truenorth, 3)
            if self.energy_truenorth is not None
            else "-",
            "E_SpiNNaker": round(self.energy_spinnaker, 3)
            if self.energy_spinnaker is not None
            else "-",
        }


def _row_from_run(
    dataset: str, method: MethodSpec, run: AggregatedRun, target_fraction: float
) -> Table2Row:
    # The paper's latency is the point at which the method settles at the
    # target accuracy; with the small synthetic test sets a single lucky step
    # can cross the target transiently, so we use the *sustained* criterion
    # (the accuracy stays at or above the target for the rest of the run).
    target = run.dnn_accuracy * target_fraction
    latency = latency_to_target(run.accuracy_curve, run.recorded_steps, target, sustained=True)
    spikes = spikes_to_target(
        run.accuracy_curve, run.recorded_steps, run.cumulative_spikes, target, sustained=True
    )
    total_spikes = float(run.cumulative_spikes[-1]) if run.cumulative_spikes.size else 0.0
    if spikes is None:
        spikes = total_spikes
    effective_latency = latency if latency is not None else run.time_steps
    spikes_per_image = spikes / run.num_images if run.num_images else 0.0
    input_coding, hidden_coding = run.scheme.split("-")
    return Table2Row(
        dataset=dataset,
        method=method.label,
        input_coding=input_coding,
        hidden_coding=hidden_coding,
        num_neurons=run.num_neurons,
        dnn_accuracy=run.dnn_accuracy,
        snn_accuracy=run.accuracy,
        latency=latency,
        time_steps=run.time_steps,
        spikes_per_image=spikes_per_image,
        density=spiking_density(spikes_per_image, run.num_neurons, max(effective_latency, 1)),
        total_spikes_per_image=total_spikes / run.num_images if run.num_images else 0.0,
    )


def _attach_energy(rows: List[Table2Row], baseline: Table2Row) -> None:
    baseline_workload = EnergyWorkload(
        spikes_per_image=max(baseline.spikes_per_image, 1e-9),
        density=max(baseline.density, 1e-12),
        latency=float(baseline.latency if baseline.latency is not None else baseline.time_steps),
        label=baseline.method,
    )
    for row in rows:
        workload = EnergyWorkload(
            spikes_per_image=row.spikes_per_image,
            density=max(row.density, 0.0),
            latency=float(row.latency if row.latency is not None else row.time_steps),
            label=row.method,
        )
        row.energy_truenorth = estimate_energy(workload, baseline_workload, TRUENORTH).total
        row.energy_spinnaker = estimate_energy(workload, baseline_workload, SPINNAKER).total


def _default_workload(dataset: str) -> Workload:
    if dataset == "mnist":
        return mnist_workload()
    if dataset == "cifar10":
        return cifar10_workload()
    if dataset == "cifar100":
        return cifar100_workload()
    raise ValueError(f"unknown dataset {dataset!r}")


def run_table2(
    datasets: Sequence[str] = ("mnist", "cifar10"),
    workloads: Optional[Dict[str, Workload]] = None,
    time_steps: int = 150,
    num_images: int = 16,
    target_fraction: float = 0.99,
    seed: int = 0,
) -> List[Table2Row]:
    """Reproduce Table 2 for the requested datasets.

    Parameters
    ----------
    datasets:
        Subset of ``("mnist", "cifar10", "cifar100")``; the default skips
        CIFAR-100 to keep the standard benchmark run short (pass all three to
        regenerate the full table).
    workloads:
        Optional pre-built workloads keyed by dataset name.
    target_fraction:
        Latency / spike counts are measured at the first step reaching this
        fraction of the DNN accuracy.
    """
    rows: List[Table2Row] = []
    for dataset in datasets:
        if dataset not in TABLE2_METHODS:
            raise ValueError(f"unknown dataset {dataset!r}")
        workload = (workloads or {}).get(dataset) or _default_workload(dataset)
        pipeline = make_pipeline(
            workload,
            time_steps=time_steps,
            num_images=num_images,
            batch_size=min(16, num_images),
            seed=seed,
        )
        dataset_rows: List[Table2Row] = []
        baseline_row: Optional[Table2Row] = None
        for method in TABLE2_METHODS[dataset]:
            run = pipeline.run_scheme(method.scheme())
            row = _row_from_run(dataset, method, run, target_fraction)
            dataset_rows.append(row)
            if method.is_baseline:
                baseline_row = row
        if baseline_row is None:
            baseline_row = dataset_rows[0]
        _attach_energy(dataset_rows, baseline_row)
        rows.extend(dataset_rows)
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """Render Table 2 as text."""
    return render_table(
        "Table 2 — comparison with prior deep-SNN methods",
        [
            "dataset",
            "method",
            "input",
            "hidden",
            "neurons",
            "DNN_%",
            "SNN_%",
            "latency",
            "spikes/image",
            "spikes/image@budget",
            "density",
            "E_TrueNorth",
            "E_SpiNNaker",
        ],
        [row.as_row() for row in rows],
    )
