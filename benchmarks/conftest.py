"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The underlying
workloads (synthetic dataset + trained DNN) and the expensive nine-scheme
sweep are cached at session scope so that Table 1, Fig. 3 and Fig. 4 — which
the paper derives from the *same* simulations — also share them here.

Each benchmark writes the rendered table/series to
``benchmarks/results/<name>.txt`` so the output survives the pytest run and
can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.core.pipeline import AggregatedRun
from repro.experiments.sweep import run_all_schemes
from repro.experiments.workloads import Workload, cifar10_workload, mnist_workload

RESULTS_DIR = Path(__file__).parent / "results"

#: benchmark-scale knobs (small enough for a laptop, big enough for the
#: paper's qualitative shapes); override via environment variables, e.g.
#: ``REPRO_BENCH_TIME_STEPS=400 pytest benchmarks/``.
BENCH_TIME_STEPS = int(os.environ.get("REPRO_BENCH_TIME_STEPS", "150"))
BENCH_NUM_IMAGES = int(os.environ.get("REPRO_BENCH_NUM_IMAGES", "24"))
BENCH_SAMPLES_PER_CLASS = int(os.environ.get("REPRO_BENCH_SAMPLES_PER_CLASS", "30"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Callable fixture writing a rendered experiment output to disk."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


@pytest.fixture(scope="session")
def cifar10_vgg_workload() -> Workload:
    """The CIFAR-10-like VGG workload used by Table 1 / Fig. 3 / Fig. 4 / Table 2."""
    return cifar10_workload(samples_per_class=BENCH_SAMPLES_PER_CLASS, epochs=15, seed=0)


@pytest.fixture(scope="session")
def mnist_cnn_workload() -> Workload:
    """The MNIST-like CNN workload used by Fig. 2 / Fig. 5 / Table 2."""
    return mnist_workload(samples_per_class=BENCH_SAMPLES_PER_CLASS, epochs=12, seed=0)


_SWEEP_CACHE: Dict[str, Dict[str, AggregatedRun]] = {}


@pytest.fixture(scope="session")
def scheme_sweep(cifar10_vgg_workload) -> Dict[str, AggregatedRun]:
    """The nine-scheme sweep shared by Table 1, Fig. 3 and Fig. 4.

    The paper evaluates one trained VGG-16 under every coding combination and
    reads Table 1 and both figures off those runs; we cache the equivalent
    sweep so the three benchmarks measure their own analysis/reporting cost
    without repeating ~1 minute of simulation three times.
    """
    if "cifar10" not in _SWEEP_CACHE:
        _SWEEP_CACHE["cifar10"] = run_all_schemes(
            cifar10_vgg_workload,
            time_steps=BENCH_TIME_STEPS,
            num_images=BENCH_NUM_IMAGES,
            v_th=0.125,
            seed=0,
        )
    return _SWEEP_CACHE["cifar10"]
