"""Classification metrics shared by the ANN trainer and the SNN evaluator."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy.

    Parameters
    ----------
    predictions:
        Either logits / scores of shape ``(N, classes)`` or predicted class
        indices of shape ``(N,)``.
    labels:
        Ground-truth class indices of shape ``(N,)``.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predicted = predictions.argmax(axis=1)
    elif predictions.ndim == 1:
        predicted = predictions
    else:
        raise ValueError(f"predictions must be 1-D or 2-D, got shape {predictions.shape}")
    if predicted.shape[0] != labels.shape[0]:
        raise ValueError("predictions and labels must have the same length")
    if labels.size == 0:
        return 0.0
    return float(np.mean(predicted == labels))


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy for score matrices of shape ``(N, classes)``."""
    scores = np.asarray(scores)
    labels = np.asarray(labels)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.shape[1])
    top_k = np.argsort(scores, axis=1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=1)
    if labels.size == 0:
        return 0.0
    return float(np.mean(hits))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(labels, predictions):
        matrix[int(true), int(pred)] += 1
    return matrix
