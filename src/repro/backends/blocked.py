"""``numpy-blocked``: the reference kernels with GEMM tiled over batch shards.

One large GEMM can under-utilise multi-core machines when the BLAS build is
single-threaded (common for pip wheels in containers), and on very large
column matrices a monolithic ``matmul`` churns the cache.  This backend
inherits every kernel from the numpy reference backend and overrides only the
propagation GEMM: the left operand's rows (the batch / unfolded-position
dimension) are split into contiguous shards, each multiplied into the matching
slice of the output buffer — optionally on a thread pool (BLAS releases the
GIL, so shards genuinely overlap on multi-core machines).

Because each output row is the same dot-product reduction regardless of the
shard it lands in, results agree with the reference backend to rounding (and
in practice bit-for-bit on the common BLAS builds); the engine's backend
contract only requires prediction-level agreement, which the parity suite
asserts.

Tuning knobs (environment variables, read once per process):

* ``REPRO_BLOCKED_MIN_ROWS`` — the smallest shard worth splitting off
  (default 64; GEMMs with fewer than two shards run unsplit).
* ``REPRO_BLOCKED_THREADS`` — thread-pool width (default: CPU count capped at
  4; ``1`` tiles sequentially, which is the automatic choice on 1-CPU
  machines).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.backends.numpy_backend import NumpyBackend
from repro.backends.programs import (
    DENSE,
    EMPTY,
    SPARSE,
    FusedDenseProgram,
    _BurstThresholdOps,
    _env_sparse_mode,
    _threshold_ops_for,
)
from repro.backends.registry import register_backend


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return max(minimum, int(raw))
    except ValueError:
        return default


class BlockedNumpyBackend(NumpyBackend):
    """Numpy kernels with the propagation GEMM tiled over row shards."""

    name = "numpy-blocked"
    description = (
        "numpy kernels with the fused dense step chain (GEMM + IF update) "
        "tiled over batch shards (threaded on multi-core); runs whole-network "
        "step blocks per backend call"
    )

    def __init__(
        self, min_rows: Optional[int] = None, threads: Optional[int] = None
    ) -> None:
        self.min_rows = (
            _env_int("REPRO_BLOCKED_MIN_ROWS", 64) if min_rows is None else int(min_rows)
        )
        if threads is None:
            threads = _env_int("REPRO_BLOCKED_THREADS", min(os.cpu_count() or 1, 4))
        self.threads = max(1, int(threads))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads, thread_name_prefix="repro-blocked-gemm"
                )
            return self._pool

    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        rows = a.shape[0]
        if a.ndim != 2 or rows < 2 * self.min_rows:
            return np.matmul(a, b, out=out)
        shards = min(max(rows // self.min_rows, 1), max(self.threads, 2))
        per_shard = -(-rows // shards)
        bounds = [
            (start, min(start + per_shard, rows))
            for start in range(0, rows, per_shard)
        ]
        if self.threads > 1 and len(bounds) > 1:
            futures = [
                self._executor().submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
                for lo, hi in bounds
            ]
            for future in futures:
                future.result()
        else:
            for lo, hi in bounds:
                np.matmul(a[lo:hi], b, out=out[lo:hi])
        return out

    def compile_step_program(self, layer):
        """Fused programs with the dense-layer chain tiled per row shard.

        Dense layers over the shard threshold get
        :class:`_BlockedFusedDenseProgram` (the *whole* GEMM → bias → IF →
        threshold chain runs shard by shard, keeping each shard's
        intermediates cache-resident); everything else takes the reference
        fused programs, whose captured ``matmul`` bound method is this
        backend's tiled GEMM — so the conv canonical path keeps its tiling.
        """
        from repro.snn.layers import SpikingDense

        if type(layer) is SpikingDense and (layer.batch_size or 0) >= 2 * self.min_rows:
            try:
                env_mode = _env_sparse_mode()
            except ValueError:
                return None  # composed path surfaces the dispatcher's error
            if layer.state is not None and layer.dispatcher is not None:
                threshold_ops = _threshold_ops_for(layer, self)
                if threshold_ops is not None:
                    return _BlockedFusedDenseProgram(layer, self, threshold_ops, env_mode)
        # explicit base call (not zero-arg super): the instrumented proxy
        # invokes this method unbound with itself as ``self``
        return NumpyBackend.compile_step_program(self, layer)


class _BlockedFusedDenseProgram(FusedDenseProgram):
    """Fused dense step with the dense-path chain tiled over row shards.

    Tiling only the GEMM (what the ``matmul`` override does) still streams
    the full ``z`` / membrane / amplitude buffers through cache three more
    times for the elementwise chain; running the whole fused chain per shard
    touches each shard's intermediates while they are hot.  Every row's
    arithmetic is the exact reference sequence on a row slice, so results
    match the unblocked fused program to the backend's parity contract.
    Non-dense decisions (sparse gather, empty shortcut, cache replay) defer
    to the unblocked program.
    """

    def __init__(self, layer, backend, threshold_ops, env_mode) -> None:
        super().__init__(layer, backend, threshold_ops, env_mode)
        self._min_rows = backend.min_rows
        self._threads = backend.threads
        self._blocked = backend

    def run(self, incoming, t, incoming_nonzero=None):
        layer = self.layer
        incoming = np.asarray(incoming)
        if layer._z_cache is not None:
            return super().run(incoming, t, incoming_nonzero)
        if incoming.ndim != 2 or incoming.shape[1] != self._in_features:
            raise ValueError(
                f"{layer.name}: expected incoming shape (N, {self._in_features}), "
                f"got {incoming.shape}"
            )
        rows = incoming.shape[0]
        dispatcher = layer.dispatcher
        forced = self._forced_mode()
        decision = None
        active = None
        if incoming_nonzero is not None and forced is None:
            if incoming_nonzero == 0:
                decision = dispatcher.choose_resolved(None, 0.0)
            else:
                fraction = incoming_nonzero / incoming.size
                if dispatcher.exact_only or fraction >= dispatcher.crossover:
                    decision = dispatcher.choose_resolved(None, fraction)
        if decision is None:
            active = self._active_features(incoming)
            decision = dispatcher.choose_resolved(
                forced, active.size / self._in_features
            )
        if decision == DENSE and rows >= 2 * self._min_rows:
            return self._run_tiled(incoming, t)
        if decision == SPARSE:
            return self._neuron_step(self._sparse(incoming, active), t)
        if decision == EMPTY:
            return self._neuron_step(self._z_empty, t)
        return self._neuron_step(self._dense(incoming), t)

    def _run_tiled(self, incoming: np.ndarray, t: int) -> np.ndarray:
        layer = self.layer
        threshold_ops = self._threshold_ops
        rows = incoming.shape[0]
        shards = min(max(rows // self._min_rows, 1), max(self._threads, 2))
        per_shard = -(-rows // shards)
        bounds = [
            (start, min(start + per_shard, rows))
            for start in range(0, rows, per_shard)
        ]
        burst = type(threshold_ops) is _BurstThresholdOps
        threshold = None
        th = compute_th = use_ceiling = None
        if burst:
            th = threshold_ops._threshold
            compute_th = not th._th_valid
            use_ceiling = th._updates >= th._clamp_after
        else:
            threshold = threshold_ops.thresholds(t)  # 0-d: shared by shards

        def _shard(lo: int, hi: int) -> int:
            x = incoming[lo:hi]
            z = self._z[lo:hi]
            np.matmul(x, self._w, out=z)
            if self._bias is not None:
                z += self._bias
            if burst:
                if compute_th:
                    np.multiply(
                        th._g[lo:hi], threshold_ops._v_th, out=th._th_buf[lo:hi]
                    )
                thr = th._th_buf[lo:hi]
            else:
                thr = threshold
            v = self._v_mem[lo:hi]
            spk = self._spikes[lo:hi]
            sig = self._signals[lo:hi]
            amp = self._amplitudes[lo:hi]
            v += z
            np.greater_equal(v, thr, out=spk)
            np.greater_equal(v, thr, out=sig)
            np.multiply(thr, sig, out=amp)
            if self._subtract_reset:
                v -= amp
            else:
                np.copyto(v, self._v_rest_typed, where=spk)
            if not self._allow_negative:
                np.maximum(v, self._v_rest, out=v)
            count = int(np.count_nonzero(spk))
            if burst:
                g = th._g[lo:hi]
                grown = th._grown[lo:hi]
                np.multiply(g, threshold_ops._beta, out=grown)
                if use_ceiling:
                    np.minimum(grown, th._ceiling, out=grown)
                if threshold_ops._max_burst is not None:
                    self._blocked.burst_cap(
                        grown, g, spk, th._consecutive[lo:hi],
                        th._cons_scratch[lo:hi], th._capped[lo:hi],
                        threshold_ops._max_burst,
                    )
                np.multiply(grown, sig, out=grown)
                np.subtract(1.0, sig, out=th._silent_signal[lo:hi])
                np.add(grown, th._silent_signal[lo:hi], out=g)
            return count

        if self._threads > 1 and len(bounds) > 1:
            futures = [
                self._blocked._executor().submit(_shard, lo, hi) for lo, hi in bounds
            ]
            total = sum(future.result() for future in futures)
        else:
            total = sum(_shard(lo, hi) for lo, hi in bounds)
        if burst:
            th._updates += 1
            th._th_valid = False
            th._g_uniform = total == 0
        state = self._state
        state.last_spike_count = total
        state.total_spikes += total
        layer.last_spikes = self._spikes
        layer.output_nonzero = total
        return self._amplitudes


@register_backend(
    "numpy-blocked",
    description=BlockedNumpyBackend.description,
)
def _build_blocked_backend() -> BlockedNumpyBackend:
    return BlockedNumpyBackend()
