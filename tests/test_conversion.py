"""Tests for DNN→SNN weight normalisation and conversion."""

import numpy as np
import pytest

from repro.ann.layers import BatchNorm, Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig, convert_to_snn, fold_batch_norm
from repro.conversion.normalization import (
    activation_scales,
    model_based_scales,
    normalize_weights,
)
from repro.snn.encoding import RealEncoder
from repro.snn.layers import OutputAccumulator, SpikingAvgPool2D, SpikingConv2D, SpikingDense, SpikingMaxPool2D
from repro.snn.network import SimulationConfig
from repro.snn.thresholds import ConstantThreshold, make_threshold


def _rate_factory(hidden_index, name):
    del hidden_index, name
    return ConstantThreshold(1.0)


class TestConversionConfig:
    def test_defaults(self):
        ConversionConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"normalization": "magic"},
            {"reset_mode": "bounce"},
            {"max_pool_policy": "median"},
            {"percentile": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ConversionConfig(**kwargs)


class TestActivationScales:
    def test_scales_cover_weight_layers(self, trained_mlp, tiny_image_split):
        scales = activation_scales(trained_mlp, tiny_image_split.train.x[:20])
        weight_indices = [
            i for i, layer in enumerate(trained_mlp.layers) if isinstance(layer, (Dense, Conv2D))
        ]
        assert sorted(scales) == weight_indices
        assert all(value > 0 for value in scales.values())

    def test_percentile_not_larger_than_max(self, trained_mlp, tiny_image_split):
        x = tiny_image_split.train.x[:20]
        max_scales = activation_scales(trained_mlp, x, percentile=100.0)
        robust_scales = activation_scales(trained_mlp, x, percentile=99.0)
        for key in max_scales:
            assert robust_scales[key] <= max_scales[key] + 1e-12

    def test_invalid_percentile(self, trained_mlp, tiny_image_split):
        with pytest.raises(ValueError):
            activation_scales(trained_mlp, tiny_image_split.train.x[:5], percentile=0.0)

    def test_empty_calibration(self, trained_mlp):
        with pytest.raises(ValueError):
            activation_scales(trained_mlp, np.zeros((0, 1, 12, 12)))


class TestModelBasedScales:
    def test_positive_and_monotone_structure(self, trained_mlp):
        scales = model_based_scales(trained_mlp)
        assert all(value > 0 for value in scales.values())

    def test_bound_exceeds_data_based(self, trained_mlp, tiny_image_split):
        """The weight-based bound is at least as large as observed activations."""
        data_scales = activation_scales(trained_mlp, tiny_image_split.train.x[:20])
        model_scales = model_based_scales(trained_mlp)
        for key in data_scales:
            assert model_scales[key] >= data_scales[key] * 0.999


class TestNormalizeWeights:
    def test_normalised_activations_bounded(self, trained_mlp, tiny_image_split):
        """After data-based normalisation every ReLU output is ≤ 1 on the
        calibration set (the property the conversion relies on)."""
        x = tiny_image_split.train.x[:30]
        result = normalize_weights(trained_mlp, calibration_x=x, method="data")
        original = trained_mlp.get_weights()
        trained_mlp.set_weights(result.weights)
        try:
            activations = trained_mlp.forward_collect(x)
            for index, layer in enumerate(trained_mlp.layers):
                if isinstance(layer, ReLU):
                    assert activations[index].max() <= 1.0 + 1e-9
        finally:
            trained_mlp.set_weights(original)

    def test_predictions_unchanged_by_normalisation(self, trained_mlp, tiny_image_split):
        """Per-layer positive rescaling must not change the argmax prediction."""
        x = tiny_image_split.test.x[:20]
        before = trained_mlp.predict(x)
        result = normalize_weights(
            trained_mlp, calibration_x=tiny_image_split.train.x[:30], method="data"
        )
        original = trained_mlp.get_weights()
        trained_mlp.set_weights(result.weights)
        try:
            after = trained_mlp.predict(x)
        finally:
            trained_mlp.set_weights(original)
        assert np.array_equal(before, after)

    def test_none_method_copies_weights(self, trained_mlp):
        result = normalize_weights(trained_mlp, method="none")
        for copied, original in zip(result.weights, trained_mlp.get_weights()):
            for key in original:
                assert np.array_equal(copied[key], original[key])

    def test_requires_calibration_for_data(self, trained_mlp):
        with pytest.raises(ValueError):
            normalize_weights(trained_mlp, method="data")

    def test_model_method_needs_no_data(self, trained_mlp):
        result = normalize_weights(trained_mlp, method="model")
        assert result.method == "model"
        assert len(result.scales) > 0

    def test_unknown_method(self, trained_mlp):
        with pytest.raises(ValueError):
            normalize_weights(trained_mlp, method="quantile")


class TestFoldBatchNorm:
    def _bn_model(self):
        rng = np.random.default_rng(0)
        dense = Dense(4, 3, seed=0)
        bn = BatchNorm(3)
        # give BatchNorm non-trivial learned statistics
        bn.params["gamma"] = rng.uniform(0.5, 1.5, size=3)
        bn.params["beta"] = rng.uniform(-0.5, 0.5, size=3)
        bn.running_mean = rng.uniform(-1, 1, size=3)
        bn.running_var = rng.uniform(0.5, 2.0, size=3)
        model = Sequential([dense, bn, ReLU(), Dense(3, 2, seed=1)], input_shape=(4,))
        return model

    def test_folded_weights_reproduce_bn_model_without_bn(self):
        """Loading the folded weights into a BN-free copy of the network
        reproduces the BN model's inference outputs exactly — which is how the
        converter uses them (the SNN has no BatchNorm layer)."""
        model = self._bn_model()
        x = np.random.default_rng(1).uniform(size=(10, 4))
        before = model.predict_scores(x)

        folded = fold_batch_norm(model)
        bn_free = Sequential([Dense(4, 3, seed=0), ReLU(), Dense(3, 2, seed=1)], input_shape=(4,))
        bn_free.set_weights([folded[0], {}, folded[3]])
        assert np.allclose(before, bn_free.predict_scores(x), atol=1e-10)

    def test_fold_conv_batchnorm(self):
        conv = Conv2D(1, 2, kernel_size=3, padding=1, seed=0)
        bn = BatchNorm(2)
        bn.running_mean = np.array([0.3, -0.2])
        bn.running_var = np.array([1.5, 0.7])
        bn.params["gamma"] = np.array([1.2, 0.8])
        bn.params["beta"] = np.array([0.1, -0.1])
        model = Sequential(
            [conv, bn, ReLU(), Flatten(), Dense(2 * 8 * 8, 2, seed=1)], input_shape=(1, 8, 8)
        )
        x = np.random.default_rng(2).uniform(size=(4, 1, 8, 8))
        before = model.predict_scores(x)

        folded = fold_batch_norm(model)
        bn_free = Sequential(
            [
                Conv2D(1, 2, kernel_size=3, padding=1, seed=0),
                ReLU(),
                Flatten(),
                Dense(2 * 8 * 8, 2, seed=1),
            ],
            input_shape=(1, 8, 8),
        )
        bn_free.set_weights([folded[0], {}, {}, folded[4]])
        assert np.allclose(before, bn_free.predict_scores(x), atol=1e-10)

    def test_bn_without_weight_layer_raises(self):
        model = Sequential([BatchNorm(4), Dense(4, 2, seed=0)], input_shape=(4,))
        with pytest.raises(ValueError):
            fold_batch_norm(model)


class TestConvertToSnn:
    def test_structure_of_converted_mlp(self, trained_mlp, tiny_image_split):
        snn = convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=_rate_factory,
            calibration_x=tiny_image_split.train.x[:20],
        )
        assert isinstance(snn.layers[-1], OutputAccumulator)
        assert any(isinstance(layer, SpikingDense) for layer in snn.layers)
        assert snn.num_classes == tiny_image_split.num_classes

    def test_converted_cnn_has_conv_and_pool(self, trained_cnn, tiny_color_split):
        snn = convert_to_snn(
            trained_cnn,
            encoder=RealEncoder(),
            threshold_factory=_rate_factory,
            calibration_x=tiny_color_split.train.x[:16],
        )
        assert any(isinstance(layer, SpikingConv2D) for layer in snn.layers)
        assert any(isinstance(layer, SpikingAvgPool2D) for layer in snn.layers)

    def test_max_pool_policies(self, tiny_color_split):
        model = Sequential(
            [
                Conv2D(3, 4, kernel_size=3, padding=1, seed=0),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 5 * 5, 3, seed=1),
            ],
            input_shape=(3, 10, 10),
        )
        snn_spiking = convert_to_snn(
            model, RealEncoder(), _rate_factory,
            config=ConversionConfig(max_pool_policy="spiking"),
            calibration_x=tiny_color_split.train.x[:8],
        )
        snn_avg = convert_to_snn(
            model, RealEncoder(), _rate_factory,
            config=ConversionConfig(max_pool_policy="average"),
            calibration_x=tiny_color_split.train.x[:8],
        )
        assert any(isinstance(l, SpikingMaxPool2D) for l in snn_spiking.layers)
        assert not any(isinstance(l, SpikingMaxPool2D) for l in snn_avg.layers)
        assert any(isinstance(l, SpikingAvgPool2D) for l in snn_avg.layers)

    def test_bias_scale_defaults_to_encoder_throughput(self, trained_mlp, tiny_image_split):
        from repro.snn.encoding import PhaseEncoder

        snn = convert_to_snn(
            trained_mlp,
            encoder=PhaseEncoder(period=8),
            threshold_factory=_rate_factory,
            calibration_x=tiny_image_split.train.x[:10],
        )
        dense_layers = [l for l in snn.layers if isinstance(l, SpikingDense)]
        assert dense_layers[0].bias_scale == pytest.approx(1 / 8)

    def test_threshold_factory_called_per_hidden_layer(self, trained_mlp, tiny_image_split):
        calls = []

        def factory(index, name):
            calls.append((index, name))
            return ConstantThreshold(1.0)

        convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=factory,
            calibration_x=tiny_image_split.train.x[:10],
        )
        # the MLP has exactly one hidden Dense layer (the head is the output)
        assert len(calls) == 1
        assert calls[0][0] == 0

    def test_requires_dense_head(self):
        model = Sequential(
            [Conv2D(1, 2, kernel_size=3, padding=1, seed=0), ReLU()], input_shape=(1, 8, 8)
        )
        with pytest.raises(ValueError):
            convert_to_snn(model, RealEncoder(), _rate_factory, calibration_x=np.zeros((2, 1, 8, 8)))

    def test_batchnorm_model_converts_and_matches_dnn(self, tiny_image_split):
        """A model with BatchNorm is folded at conversion and the resulting SNN
        still tracks the DNN's predictions."""
        from repro.ann.optimizers import Adam

        data = tiny_image_split
        model = Sequential(
            [
                Flatten(),
                Dense(144, 24, seed=0),
                BatchNorm(24),
                ReLU(),
                Dense(24, data.num_classes, seed=1),
            ],
            input_shape=data.input_shape,
        )
        model.fit(
            data.train.x, data.train.y, epochs=10, batch_size=16,
            optimizer=Adam(2e-3), seed=0,
        )
        dnn_predictions = model.predict(data.test.x[:12])
        snn = convert_to_snn(
            model,
            encoder=RealEncoder(),
            threshold_factory=_rate_factory,
            calibration_x=data.train.x[:30],
        )
        result = snn.run(data.test.x[:12], SimulationConfig(time_steps=80))
        agreement = float(np.mean(result.predictions() == dnn_predictions))
        assert agreement >= 0.8

    def test_converted_snn_matches_dnn_predictions(self, trained_mlp, tiny_image_split):
        """With real input coding and rate hidden coding, the converted SNN's
        accumulated output agrees with the DNN on most test samples — the
        fundamental soundness property of the conversion."""
        x = tiny_image_split.test.x[:16]
        dnn_predictions = trained_mlp.predict(x)
        snn = convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=lambda i, n: make_threshold("rate"),
            calibration_x=tiny_image_split.train.x[:30],
        )
        result = snn.run(x, SimulationConfig(time_steps=80))
        agreement = float(np.mean(result.predictions() == dnn_predictions))
        assert agreement >= 0.85
