"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``pip install -e . --no-build-isolation --no-use-pep517`` works
on offline machines that lack the ``wheel`` package required by PEP 517
editable installs.
"""

from setuptools import setup

setup()
