"""Activation functions used by the ANN framework.

Only ReLU is used in convertible networks (the DNN→SNN conversion maps ReLU
activations to IF firing rates), but softmax and sigmoid are provided for the
output head and for tests.
"""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation ``x``."""
    return (x > 0.0).astype(np.float64)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
