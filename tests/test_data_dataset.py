"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, iterate_minibatches, one_hot, train_test_split


def _make_dataset(n_per_class=10, num_classes=3, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n_per_class * num_classes, dim))
    y = np.repeat(np.arange(num_classes), n_per_class)
    return Dataset(x=x, y=y, num_classes=num_classes, name="unit")


class TestOneHot:
    def test_basic(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert encoded.shape == (3, 3)
        assert np.array_equal(encoded.argmax(axis=1), [0, 2, 1])
        assert np.allclose(encoded.sum(axis=1), 1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1, 0]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2)), 3)

    def test_rejects_bad_num_classes(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0]), 0)


class TestDataset:
    def test_length_and_shape(self):
        data = _make_dataset()
        assert len(data) == 30
        assert data.input_shape == (5,)
        assert not data.is_image

    def test_image_flag(self):
        data = Dataset(np.zeros((4, 1, 8, 8)), np.zeros(4, dtype=int), num_classes=2)
        assert data.is_image
        assert data.input_shape == (1, 8, 8)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), num_classes=2)

    def test_labels_above_num_classes_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.array([0, 1, 5]), num_classes=2)

    def test_labels_one_hot(self):
        data = _make_dataset(num_classes=3)
        encoded = data.labels_one_hot()
        assert encoded.shape == (len(data), 3)

    def test_subset(self):
        data = _make_dataset()
        sub = data.subset(np.array([0, 1, 2]))
        assert len(sub) == 3
        assert sub.num_classes == data.num_classes

    def test_take(self):
        data = _make_dataset()
        assert len(data.take(7)) == 7

    def test_take_more_than_available(self):
        data = _make_dataset(n_per_class=2, num_classes=2)
        assert len(data.take(100)) == 4

    def test_take_negative_raises(self):
        with pytest.raises(ValueError):
            _make_dataset().take(-1)

    def test_shuffled_preserves_pairs(self):
        data = _make_dataset()
        shuffled = data.shuffled(seed=0)
        # every (x, y) pair still present
        original = {tuple(row) + (label,) for row, label in zip(data.x, data.y)}
        after = {tuple(row) + (label,) for row, label in zip(shuffled.x, shuffled.y)}
        assert original == after

    def test_class_counts(self):
        data = _make_dataset(n_per_class=10, num_classes=3)
        assert np.array_equal(data.class_counts(), [10, 10, 10])


class TestTrainTestSplit:
    def test_sizes(self):
        data = _make_dataset(n_per_class=10, num_classes=3)
        split = train_test_split(data, test_fraction=0.2, seed=0)
        assert len(split.train) + len(split.test) == len(data)
        assert len(split.test) == 6  # 20% of 30, stratified 2 per class

    def test_stratified_balance(self):
        data = _make_dataset(n_per_class=20, num_classes=4, seed=1)
        split = train_test_split(data, test_fraction=0.25, seed=1)
        counts = split.test.class_counts()
        assert np.all(counts == counts[0])

    def test_unstratified(self):
        data = _make_dataset(n_per_class=10, num_classes=3)
        split = train_test_split(data, test_fraction=0.3, seed=0, stratified=False)
        assert len(split.test) == 9

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(_make_dataset(), test_fraction=0.0)

    def test_split_exposes_metadata(self):
        split = train_test_split(_make_dataset(), test_fraction=0.2, seed=0)
        assert split.num_classes == 3
        assert split.input_shape == (5,)


class TestIterateMinibatches:
    def test_covers_all_samples(self):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, batch_size=3, shuffle=False):
            seen.extend(by.tolist())
        assert seen == list(range(10))

    def test_drop_last(self):
        x = np.zeros((10, 1))
        y = np.zeros(10)
        batches = list(iterate_minibatches(x, y, batch_size=3, shuffle=False, drop_last=True))
        assert all(b[0].shape[0] == 3 for b in batches)
        assert len(batches) == 3

    def test_shuffle_is_seeded(self):
        x = np.arange(20)[:, None].astype(float)
        y = np.arange(20)
        run1 = [by.tolist() for _, by in iterate_minibatches(x, y, 5, shuffle=True, seed=3)]
        run2 = [by.tolist() for _, by in iterate_minibatches(x, y, 5, shuffle=True, seed=3)]
        assert run1 == run2

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((2, 1)), np.zeros(2), 0))

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((2, 1)), np.zeros(3), 1))
