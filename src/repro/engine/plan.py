"""Plan stage: per-network preparation shared by every simulation run.

Everything that must happen *before* the first time step — and that PR 1/2
made cacheable — lives here, pulled out of ``SpikingNetwork.run``:

* the simulation **dtype** is resolved once through the project policy
  (float32 default, float64 opt-in bit-identical to the seed engine),
* the **compute backend** is resolved once through the backend registry
  (:mod:`repro.backends`; ``SimulationConfig.backend`` → the ``repro
  --backend`` override → ``REPRO_BACKEND`` → the numpy reference backend)
  and handed to every layer at reset, so all kernel hot paths of a run live
  on one backend,
* the **snapshot schedule** (which steps record output scores) is computed
  once per configuration — it does not depend on the batch,
* per-batch **preparation** (:meth:`SimulationPlan.prepare`) resets the
  encoder and every layer — which is where the weight casts, cached
  im2col/direct-conv plans, sparsity-crossover calibrations and scratch
  buffers are (re)built, all keyed inside the layers so repeated batches of
  the same geometry reuse them — registers the spike records, and enables
  per-phase input caching for periodic encoders.

A :class:`SimulationPlan` is cheap and reusable: the
:class:`~repro.engine.session.InferenceSession` builds one per configuration
and serves every subsequent batch through it, amortising the expensive parts
(which live in the network's layers) across requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.backends import KernelBackend, network_programs_enabled, resolve_backend
from repro.snn.network import SimulationConfig, SpikingNetwork
from repro.snn.recording import LayerRecord, SpikeRecord
from repro.utils.dtypes import resolve_dtype


def recorded_step_schedule(config: SimulationConfig) -> List[int]:
    """The 1-based steps at which output scores are snapshotted.

    Knowing the schedule up front lets the run stage fill one preallocated
    output-history block instead of stacking copies.
    """
    return [
        t + 1
        for t in range(config.time_steps)
        if (t + 1) % config.record_outputs_every == 0 or t == config.time_steps - 1
    ]


def block_schedule(config: SimulationConfig) -> List[Tuple[int, int]]:
    """The ``(t0, n)`` blocks of consecutive steps a network program executes
    per seam crossing.

    With ``early_exit_patience`` set, every step is its own block — the run
    stage must observe the output logits between steps to keep the freeze
    semantics bit-for-bit unchanged.  With early exit off nothing interrupts
    the step loop: the network program fills the recorded snapshots itself
    (it knows :func:`recorded_step_schedule`), so the whole horizon is a
    single block and a snapshot step no longer forces a seam crossing.
    """
    if config.early_exit_patience is not None:
        return [(t, 1) for t in range(config.time_steps)]
    return [(0, config.time_steps)]


@dataclass
class PreparedBatch:
    """One input batch, bound to a plan and ready for the run stage.

    Produced by :meth:`SimulationPlan.prepare`; consumed (once) by
    :func:`repro.engine.run.execute`.  The encoder and layers have been reset
    for this batch and the spike records preallocated for the full horizon.
    """

    plan: "SimulationPlan"
    batch_size: int
    record: SpikeRecord
    input_record: LayerRecord
    layer_records: List[LayerRecord]
    #: the resolved backend the layers were reset on
    backend: Optional[KernelBackend] = None
    #: whole-network block program (``None`` → per-step driving); compiled by
    #: :meth:`SimulationPlan.prepare`, refreshed by :meth:`recompile_network_program`
    network_program: Optional[object] = None

    def recompile_network_program(self) -> None:
        """Re-ask the backend for the network program (mid-run shrink).

        ``shrink_batch`` reallocates the per-batch buffers both the layer
        programs and the network program capture; the run stage refreshes
        the layer programs and then calls this.
        """
        if self.network_program is None or self.backend is None:
            return
        program = self.backend.compile_network_program(self)
        if program is None:
            # a backend that declines mid-run still gets block semantics:
            # the generic driver composes whatever per-layer programs the
            # layers resolve, so an in-flight block run never loses its path
            from repro.backends import compile_network_step_program

            program = compile_network_step_program(self)
        self.network_program = program


@dataclass
class SimulationPlan:
    """Reusable per-(network, config) preparation for simulation runs."""

    network: SpikingNetwork
    config: SimulationConfig
    dtype: np.dtype
    backend: Optional[KernelBackend] = None
    recorded_steps: List[int] = field(default_factory=list)

    def prepare(self, x: np.ndarray) -> PreparedBatch:
        """Bind an input batch: validate, reset state, register recording.

        Layer ``reset`` re-initialises all dynamic state and (re)builds the
        per-geometry plans and buffers — cached inside the layers, so
        repeated batches of the same shape and dtype reuse them.
        """
        network = self.network
        x = np.asarray(x, dtype=self.dtype)
        if x.shape[1:] != network.input_shape:
            raise ValueError(
                f"input shape {x.shape[1:]} does not match network input {network.input_shape}"
            )
        batch_size = x.shape[0]
        if batch_size == 0:
            raise ValueError("input batch is empty")

        config = self.config
        record = SpikeRecord(
            sample_fraction=config.sample_fraction,
            record_trains=config.record_trains,
            seed=config.seed,
        )
        input_record = record.register_input(network.num_input_neurons())
        layer_records = [
            record.register_layer(layer.name, layer.num_neurons, layer.is_spiking)
            for layer in network.layers
        ]
        record.preallocate(config.time_steps, batch_size)

        network.encoder.reset(x, dtype=self.dtype)
        backend = self.backend if self.backend is not None else resolve_backend(None)
        for layer in network.layers:
            layer.reset(batch_size, dtype=self.dtype, backend=backend)
        # A periodic input drive (phase / real / TTFS coding) lets the first
        # layer cache its synaptic input per phase — bit-exact in every dtype.
        first = network.layers[0]
        if hasattr(first, "enable_input_caching"):
            first.enable_input_caching(getattr(network.encoder, "steady_period", None))
        # compile each layer's fused step program (or its composed fallback)
        # now, so resolution cost never lands inside the timed step loop
        for layer in network.layers:
            layer.ensure_step_program()

        prepared = PreparedBatch(
            plan=self,
            batch_size=batch_size,
            record=record,
            input_record=input_record,
            layer_records=layer_records,
            backend=backend,
        )
        # whole-network block program: one seam crossing per block of steps
        # instead of one per layer per step (None → per-step driving, the
        # compatibility default for primitives-only backends)
        if network_programs_enabled():
            prepared.network_program = backend.compile_network_program(prepared)
        return prepared


def plan_simulation(
    network: SpikingNetwork, config: Optional[SimulationConfig] = None
) -> SimulationPlan:
    """Build the (batch-independent) simulation plan for ``network``."""
    config = config or SimulationConfig()
    return SimulationPlan(
        network=network,
        config=config,
        dtype=resolve_dtype(config.dtype),
        backend=resolve_backend(config.backend),
        recorded_steps=recorded_step_schedule(config),
    )
