"""Stdlib HTTP front end for the serving engine.

A thin JSON layer over :class:`~repro.serving.engine.ServingEngine` built on
``http.server`` only (no third-party dependencies):

* ``POST /v1/classify`` — body ``{"image": [...], "scheme": "phase-burst",
  "priority": "interactive" | "batch", "client_id": "..."}`` (``image``
  nested or flat; everything else optional); responds with the
  :meth:`~repro.serving.protocol.ClassifyResult.to_dict` payload.
  Admission-control rejections *and* per-client rate-limit / quota bounces
  map to **429 Too Many Requests** carrying a computed ``Retry-After``
  header (estimated queue-drain time, token-refill time, or quota-window
  reset); malformed payloads and unknown schemes map to **400**, timeouts
  to **504**.  Clients identify themselves with an ``X-API-Key`` header (or
  the ``client_id`` body field); anonymous traffic shares one rate-limit
  identity.
* ``GET /v1/schemes`` — the registry listing (same source of truth as
  ``repro --list-schemes``).
* ``GET /healthz`` — liveness plus the loaded schemes.
* ``GET /metrics`` — request counters, queue depth, batch-size histogram,
  p50/p95/p99 latency and queue-wait percentiles, per-scheme replica
  utilisation and rate-limiter gauges.

:class:`ServingHTTPServer` wraps ``ThreadingHTTPServer`` with non-daemon
request threads so :meth:`ServingHTTPServer.close` is a graceful drain:
stop accepting, wait for in-flight requests, then drain the engine's
batchers — every admitted request is answered before the process exits.
"""

from __future__ import annotations

import json
import math
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.core.registry import UnknownCodingError
from repro.serving.engine import ServingEngine
from repro.serving.limits import RateLimitedError
from repro.serving.scheduler import BatcherClosedError, QueueFullError
from repro.utils.logging import get_logger

logger = get_logger("serving.http")

#: request body size guard (a CIFAR-sized float image is ~100 kB of JSON)
MAX_BODY_BYTES = 32 * 1024 * 1024


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the engine attached to the server."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    @property
    def engine(self) -> ServingEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        message: str,
        *,
        unread_body: bool = False,
        retry_after_s: Optional[float] = None,
    ) -> None:
        if unread_body:
            # responding before consuming the request body would leave its
            # bytes in the keep-alive socket and corrupt the next request
            self.close_connection = True
        headers: Optional[Dict[str, str]] = None
        payload: Dict[str, object] = {"error": message}
        if retry_after_s is not None:
            # Retry-After is integer seconds; round up so clients never
            # retry before the server expects capacity back
            headers = {"Retry-After": str(max(1, math.ceil(retry_after_s)))}
            payload["retry_after_s"] = round(float(retry_after_s), 3)
        self._send_json(status, payload, headers)

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "schemes_loaded": self.engine.loaded_schemes(),
                    "queue_depth": self.engine.queue_depth(),
                },
            )
        elif self.path == "/metrics":
            self._send_json(200, self.engine.stats())
        elif self.path == "/v1/schemes":
            self._send_json(200, self.engine.schemes())
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != "/v1/classify":
            self._error(404, f"unknown path {self.path!r}", unread_body=True)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "invalid Content-Length", unread_body=True)
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(
                400,
                f"request body must be 1..{MAX_BODY_BYTES} bytes",
                unread_body=True,
            )
            return
        try:
            body = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(body, dict) or "image" not in body:
            self._error(400, "request body must be a JSON object with an 'image' field")
            return
        scheme = body.get("scheme") or self.server.default_scheme  # type: ignore[attr-defined]
        client_id = self.headers.get("X-API-Key") or body.get("client_id")
        if client_id is not None and not isinstance(client_id, str):
            self._error(400, "'client_id' must be a string")
            return
        try:
            result = self.engine.classify_sync(
                body["image"],
                scheme,
                priority=body.get("priority"),
                client_id=client_id,
            )
        except QueueFullError as exc:
            self._error(429, str(exc), retry_after_s=exc.retry_after_s)
        except RateLimitedError as exc:
            self._error(429, str(exc), retry_after_s=exc.retry_after_s)
        except (UnknownCodingError, ValueError) as exc:
            self._error(400, str(exc))
        except FutureTimeoutError:
            self._error(504, "classification timed out")
        except BatcherClosedError:
            self._error(503, "server is draining")
        except Exception as exc:  # noqa: BLE001 - surface as a 500, keep serving
            logger.warning("classify failed: %s", exc)
            self._error(500, f"internal error: {exc}")
        else:
            self._send_json(200, result.to_dict())


class _ThreadingHTTPServer(ThreadingHTTPServer):
    # The socketserver default listen backlog of 5 drops (and eventually
    # resets) connections when a burst arrives faster than the accept loop
    # drains it; admission control must see every connection so it can
    # answer 429 instead of the kernel answering RST.
    request_queue_size = 128


class ServingHTTPServer:
    """The ``repro serve`` HTTP server: an engine behind ``ThreadingHTTPServer``.

    Parameters
    ----------
    engine:
        The (shared, already configured) :class:`ServingEngine`.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    default_scheme:
        Scheme used by ``/v1/classify`` requests that omit ``"scheme"``.
    """

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        default_scheme: str = "phase-burst",
    ) -> None:
        self.engine = engine
        self._server = _ThreadingHTTPServer((host, port), _RequestHandler)
        # graceful drain: wait for in-flight request threads on server_close
        self._server.daemon_threads = False
        self._server.block_on_close = True
        self._server.engine = engine  # type: ignore[attr-defined]
        self._server.default_scheme = default_scheme  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved when ``port=0`` was asked)."""
        return self._server.server_address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called (blocks the caller)."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "ServingHTTPServer":
        """Serve on a background thread (for in-process tests and examples)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the accept loop (safe to call from any *other* thread)."""
        self._server.shutdown()

    def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, drain batchers."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._server.server_close()  # waits for in-flight request threads
        self.engine.close()

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
