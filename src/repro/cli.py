"""Command-line interface.

Four subcommands cover the common workflows:

* ``repro experiment <name>`` — regenerate one (or all) of the paper's tables
  and figures and print the rendered text (optionally saving it to a file);
* ``repro compare`` — evaluate a list of coding schemes on a workload and
  print a Table-1-style comparison.  ``--schemes`` accepts registry products
  (``all``, ``all-input:burst``, ``phase:all``) resolved by querying the
  scheme registry;
* ``repro serve`` — start the concurrent batching inference server
  (:mod:`repro.serving`): micro-batched ``/v1/classify`` over a trained
  workload, replica session pools (``--num-replicas``), per-client rate
  limits and quotas (``--max-rps`` / ``--client-quota``), with graceful
  drain on SIGTERM/SIGINT;
* ``repro info`` — print the installed version and the available experiments,
  datasets, models and coding schemes.

Cross-cutting flags: ``--dtype`` pins the simulation precision, ``--backend``
pins the compute backend (``--list-backends`` prints the backend registry
with availability), ``--list-schemes`` prints the coding-scheme registry.

The module is also the ``repro`` console-script entry point declared in
``pyproject.toml``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import __version__
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline
from repro.experiments.runner import EXPERIMENT_NAMES, RunnerConfig, run_all, run_experiment
from repro.experiments.workloads import build_workload
from repro.utils.tables import Table


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fast and Efficient Information Transmission with "
        "Burst Spikes in Deep Spiking Neural Networks' (DAC 2019)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default=None,
        help="simulation precision for every run in this invocation "
        "(default: the project dtype policy, float32)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend for every run in this invocation "
        "(default: the backend policy — REPRO_BACKEND or 'numpy'; "
        "--list-backends shows the registry)",
    )
    parser.add_argument(
        "--list-schemes",
        action="store_true",
        help="list the registered coding schemes (including extensions) and exit",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered compute backends (with availability) and exit",
    )
    subparsers = parser.add_subparsers(dest="command")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "name",
        choices=list(EXPERIMENT_NAMES) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    experiment.add_argument("--fast", action="store_true", help="use the small/fast preset")
    experiment.add_argument("--time-steps", type=int, default=None, help="simulation horizon")
    experiment.add_argument("--images", type=int, default=None, help="number of test images")
    experiment.add_argument("--seed", type=int, default=0, help="random seed")
    experiment.add_argument(
        "--output", type=Path, default=None, help="also write the rendered output to this file"
    )

    compare = subparsers.add_parser("compare", help="compare coding schemes on a workload")
    compare.add_argument(
        "--schemes",
        nargs="+",
        default=["real-rate", "phase-phase", "phase-burst"],
        help="coding schemes in 'input-hidden' notation, or registry products: "
        "'all' (every input x hidden combination), 'all-input:burst', 'phase:all'",
    )
    compare.add_argument("--dataset", default="cifar10", choices=["mnist", "cifar10", "cifar100"])
    compare.add_argument("--model", default="vgg_small",
                         choices=["mlp", "small_cnn", "cnn", "vgg_small", "vgg16"])
    compare.add_argument("--time-steps", type=int, default=120)
    compare.add_argument("--images", type=int, default=16)
    compare.add_argument("--v-th", type=float, default=0.125, help="burst base threshold")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help="shard batch evaluation across this many worker processes "
        "(falls back to in-process execution on single-CPU machines)",
    )
    compare.add_argument(
        "--early-exit-patience",
        type=int,
        default=None,
        help="freeze images whose output ranking has been stable for this many "
        "steps (default: simulate every image for the full time budget)",
    )
    compare.add_argument(
        "--early-exit-margin",
        type=float,
        default=None,
        help="adaptive early exit: additionally require the per-step output "
        "margin (top1 - top2 accumulated score, per step) to stay at or above "
        "this threshold throughout the patience window (requires "
        "--early-exit-patience; default: argmax stability only)",
    )

    serve = subparsers.add_parser(
        "serve", help="start the concurrent batching inference server"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument(
        "--scheme",
        dest="schemes",
        nargs="+",
        default=["phase-burst"],
        help="coding scheme(s) to preload; the first is the default for "
        "requests that omit 'scheme' (registry products like 'all-input:burst' work)",
    )
    serve.add_argument("--dataset", default="mnist", choices=["mnist", "cifar10", "cifar100"])
    serve.add_argument("--model", default="small_cnn",
                       choices=["mlp", "small_cnn", "cnn", "vgg_small", "vgg16"])
    serve.add_argument("--time-steps", type=int, default=100, help="simulation horizon per request")
    serve.add_argument("--max-batch-size", type=int, default=8,
                       help="largest micro-batch the scheduler coalesces")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="longest a non-full batch waits before flushing")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission-control bound per scheme queue (beyond it: 429)")
    serve.add_argument("--num-replicas", type=int, default=1,
                       help="inference session replicas (and batcher workers) per "
                       "scheme; N replicas serve N micro-batches concurrently "
                       "on a multi-core machine")
    serve.add_argument("--max-rps", type=float, default=None,
                       help="per-client token-bucket rate limit in requests/s "
                       "(default: unlimited; over-rate requests get 429 + Retry-After)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       help="token-bucket capacity: requests a quiet client may "
                       "fire at once (default: ceil(max-rps))")
    serve.add_argument("--client-quota", type=int, default=None,
                       help="admitted requests per client per quota window "
                       "(default: unlimited)")
    serve.add_argument("--quota-window-s", type=float, default=60.0,
                       help="length of the fixed per-client quota window, seconds")
    serve.add_argument("--early-exit-patience", type=int, default=None,
                       help="converged-image early exit patience (default: off)")
    serve.add_argument("--samples-per-class", type=int, default=30,
                       help="synthetic training-set size per class for the served model")
    serve.add_argument("--epochs", type=int, default=12, help="DNN training epochs")
    serve.add_argument("--seed", type=int, default=0)

    subparsers.add_parser("info", help="print version and available components")
    return parser


def _runner_config(args: argparse.Namespace) -> RunnerConfig:
    config = RunnerConfig.fast() if args.fast else RunnerConfig()
    if args.time_steps is not None:
        config.time_steps = args.time_steps
    if args.images is not None:
        config.num_images = args.images
    config.seed = args.seed
    return config


def _command_experiment(args: argparse.Namespace) -> int:
    config = _runner_config(args)
    if args.name == "all":
        outputs = run_all(config)
        text = "\n\n".join(outputs[name] for name in outputs)
    else:
        text = run_experiment(args.name, config)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n")
        print(f"\n[saved to {args.output}]")
    return 0


def _parse_schemes(
    specs: Sequence[str], v_th: Optional[float] = None
) -> Optional[List[HybridCodingScheme]]:
    """Resolve ``--schemes`` specs through the coding registry.

    Registry products (``all``, ``all-input:burst``, ``phase:all``) are
    expanded by querying the registry first; every resulting notation is then
    built normally.  Returns ``None`` after printing a helpful error (with
    the registry's did-you-mean hint and the list of available codings) when
    a spec is unknown or malformed — instead of surfacing a raw traceback.
    """
    from repro.core.registry import expand_scheme_specs

    try:
        notations = expand_scheme_specs(specs)
    except ValueError as exc:
        print(f"error: invalid scheme spec: {exc}", file=sys.stderr)
        print("use --list-schemes to see the registered codings", file=sys.stderr)
        return None
    schemes: List[HybridCodingScheme] = []
    for notation in notations:
        try:
            schemes.append(
                HybridCodingScheme.from_notation(
                    notation, v_th=v_th if notation.endswith("burst") else None
                )
            )
        except ValueError as exc:
            print(f"error: invalid scheme {notation!r}: {exc}", file=sys.stderr)
            print("use --list-schemes to see the registered codings", file=sys.stderr)
            return None
    return schemes


def _command_list_schemes() -> int:
    """Print the coding registry (the ``--list-schemes`` flag).

    Rendered from :func:`repro.core.registry.scheme_metadata` — the same
    rows the serving API's ``/v1/schemes`` endpoint returns.
    """
    from repro.core.registry import notation_help, scheme_metadata

    table = Table(
        ["coding", "input", "hidden", "default v_th", "description"],
        title="Registered coding schemes",
    )
    for row in scheme_metadata():
        table.add_row(
            {
                "coding": row["coding"],
                "input": "yes" if row["input"] else "-",
                "hidden": "yes" if row["hidden"] else "-",
                "default v_th": row["default_v_th"],
                "description": row["description"],
            }
        )
    print(table.render())
    print("\n" + notation_help())
    return 0


def _command_list_backends() -> int:
    """Print the compute-backend registry (the ``--list-backends`` flag).

    Rendered from :func:`repro.backends.backend_metadata`, so unavailable
    backends (e.g. ``torch`` without PyTorch installed) appear with the
    reason instead of silently missing.
    """
    from repro.backends import backend_metadata, default_backend_name

    table = Table(
        ["backend", "available", "description"],
        title="Registered compute backends",
    )
    rows = backend_metadata()
    for row in rows:
        name = row["backend"]
        if row["default"]:
            name = f"{name} (default)"
        table.add_row(
            {
                "backend": name,
                "available": "yes" if row["available"] else "no",
                "description": row["description"],
            }
        )
    print(table.render())
    print(f"\neffective backend: {default_backend_name()}")
    print("select with --backend NAME, SimulationConfig(backend=...), or REPRO_BACKEND")
    for row in rows:
        if not row["available"]:
            print(f"  {row['backend']}: unavailable — {row['error']}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    schemes = _parse_schemes(args.schemes, v_th=args.v_th)
    if schemes is None:
        return 2
    workload = build_workload(dataset=args.dataset, model=args.model, seed=args.seed)
    pipeline = SNNInferencePipeline(
        workload.model,
        workload.data,
        PipelineConfig(
            time_steps=args.time_steps,
            batch_size=16,
            max_test_images=args.images,
            seed=args.seed,
            num_workers=args.num_workers,
            early_exit_patience=args.early_exit_patience,
            early_exit_margin=args.early_exit_margin,
            # thread the backend into the config explicitly: the process-wide
            # override set by --backend does not survive into spawn-started
            # shard workers, but a config field travels with the pickle
            backend=args.backend,
        ),
    )
    table = Table(
        ["scheme", "SNN acc %", "DNN acc %", "latency", "spikes/image", "density"],
        title=f"Coding comparison on {workload.name}",
    )
    for scheme in schemes:
        run = pipeline.run_scheme(scheme)
        metrics = run.metrics(target_accuracy=run.dnn_accuracy)
        table.add_row(
            {
                "scheme": scheme.notation,
                "SNN acc %": round(run.accuracy * 100, 2),
                "DNN acc %": round(run.dnn_accuracy * 100, 2),
                "latency": metrics.latency if metrics.latency else f">{run.time_steps}",
                "spikes/image": round(run.spikes_per_image, 1),
                "density": round(metrics.density, 5),
            }
        )
    print(table.render())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Train/build the workload and run the batching inference server.

    Blocks in the HTTP accept loop until SIGTERM/SIGINT, then drains
    gracefully: the socket stops accepting, in-flight requests finish, every
    queued request is answered, and the process exits 0.
    """
    import signal
    import threading

    from repro.serving.engine import ServingConfig, ServingEngine
    from repro.serving.http import ServingHTTPServer

    schemes = _parse_schemes(args.schemes)
    if schemes is None:
        return 2
    workload = build_workload(
        dataset=args.dataset,
        model=args.model,
        seed=args.seed,
        samples_per_class=args.samples_per_class,
        epochs=args.epochs,
    )
    config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        num_replicas=args.num_replicas,
        max_rps=args.max_rps,
        rate_burst=args.rate_burst,
        client_quota=args.client_quota,
        quota_window_s=args.quota_window_s,
        time_steps=args.time_steps,
        early_exit_patience=args.early_exit_patience,
        backend=args.backend,
        seed=args.seed,
    )
    if len(schemes) > config.session_cache_size:
        # keep every preloaded scheme resident — otherwise the warm loop
        # below would evict the sessions it just built
        config = config.replace(session_cache_size=len(schemes))
    engine = ServingEngine(workload.model, workload.data.train.x, config)
    for scheme in schemes:
        print(f"preparing scheme {scheme.notation} ...", flush=True)
        engine.warm(scheme)
    server = ServingHTTPServer(
        engine, host=args.host, port=args.port, default_scheme=schemes[0].notation
    )

    def _drain(signum: int, frame: object) -> None:
        del frame
        print(f"\nsignal {signum}: draining ...", flush=True)
        # shutdown() must not run on the thread blocked in serve_forever()
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    limits = (
        f", max_rps={args.max_rps:g}" if args.max_rps is not None else ""
    ) + (
        f", client_quota={args.client_quota}/{args.quota_window_s:g}s"
        if args.client_quota is not None else ""
    )
    print(
        f"repro serve listening on {server.url} "
        f"(workload {workload.name}, default scheme {schemes[0].notation}, "
        f"num_replicas={args.num_replicas}, "
        f"max_batch_size={args.max_batch_size}, max_wait_ms={args.max_wait_ms}"
        f"{limits})",
        flush=True,
    )
    server.serve_forever()
    server.close()
    print(f"drained cleanly ({engine.metrics.requests_total} requests served)", flush=True)
    return 0


def _command_info() -> int:
    from repro.core.registry import hidden_codings, input_codings

    print(f"repro {__version__}")
    print(f"experiments : {', '.join(EXPERIMENT_NAMES)}")
    print("datasets    : mnist, cifar10, cifar100 (synthetic look-alikes)")
    print("models      : mlp, small_cnn, cnn, vgg_small, vgg16")
    print(
        f"codings     : input = {' | '.join(input_codings())} ; "
        f"hidden = {' | '.join(hidden_codings())}"
    )
    print("notation    : '<input>-<hidden>', e.g. phase-burst (the paper's proposal)")
    print("              (--list-schemes prints the full registry)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.dtype is not None:
        from repro.utils.dtypes import set_simulation_dtype

        set_simulation_dtype(args.dtype)
    if args.backend is not None:
        from repro.backends import UnknownBackendError, set_default_backend

        try:
            set_default_backend(args.backend)
        except UnknownBackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print("use --list-backends to see the registered backends", file=sys.stderr)
            return 2
    if args.list_schemes:
        return _command_list_schemes()
    if args.list_backends:
        return _command_list_backends()
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "info":
        return _command_info()
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
