"""Tests for the input encoders (real / rate / phase / burst input coding)."""

import numpy as np
import pytest

from repro.snn.encoding import (
    BurstEncoder,
    PhaseEncoder,
    PoissonRateEncoder,
    RateEncoder,
    RealEncoder,
    make_encoder,
)


def _run_encoder(encoder, x, steps):
    encoder.reset(x)
    values = np.zeros((steps,) + x.shape)
    spikes = np.zeros((steps,) + x.shape, dtype=bool)
    for t in range(steps):
        step = encoder.step(t)
        values[t] = step.values
        spikes[t] = step.spikes
    return values, spikes


class TestEncoderValidation:
    def test_requires_reset(self):
        with pytest.raises(RuntimeError):
            RealEncoder().step(0)

    def test_rejects_out_of_range_inputs(self):
        encoder = RealEncoder()
        with pytest.raises(ValueError):
            encoder.reset(np.array([[1.5]]))
        with pytest.raises(ValueError):
            encoder.reset(np.array([[-0.2]]))


class TestRealEncoder:
    def test_transmits_exact_value_every_step(self):
        x = np.array([[0.3, 0.7]])
        values, spikes = _run_encoder(RealEncoder(), x, 5)
        assert np.allclose(values, np.broadcast_to(x, values.shape))
        assert not spikes.any()

    def test_zero_spike_count(self):
        encoder = RealEncoder()
        encoder.reset(np.array([[0.5]]))
        assert encoder.step(0).spike_count == 0


class TestRateEncoder:
    def test_total_transmission_matches_value(self):
        """Over T steps the deterministic rate encoder transmits ≈ x·T."""
        x = np.array([[0.3, 0.65, 0.05]])
        steps = 200
        values, _ = _run_encoder(RateEncoder(v_th=1.0), x, steps)
        totals = values.sum(axis=0)[0]
        assert np.allclose(totals, x[0] * steps, atol=1.0)

    def test_spike_rate_proportional_to_value(self):
        x = np.array([[0.25]])
        _, spikes = _run_encoder(RateEncoder(), x, 400)
        assert spikes.sum() == pytest.approx(100, abs=1)

    def test_amplitude_equals_v_th(self):
        values, spikes = _run_encoder(RateEncoder(v_th=0.5), np.array([[1.0]]), 4)
        assert set(np.unique(values[spikes])) == {0.5}

    def test_zero_input_never_spikes(self):
        _, spikes = _run_encoder(RateEncoder(), np.zeros((1, 3)), 50)
        assert not spikes.any()


class TestPoissonRateEncoder:
    def test_expected_rate(self):
        x = np.full((1, 500), 0.3)
        _, spikes = _run_encoder(PoissonRateEncoder(seed=0), x, 100)
        rate = spikes.mean()
        assert abs(rate - 0.3) < 0.02

    def test_seeded_reproducibility(self):
        x = np.array([[0.4, 0.6]])
        a, _ = _run_encoder(PoissonRateEncoder(seed=3), x, 20)
        b, _ = _run_encoder(PoissonRateEncoder(seed=3), x, 20)
        assert np.array_equal(a, b)

    def test_extremes(self):
        x = np.array([[0.0, 1.0]])
        _, spikes = _run_encoder(PoissonRateEncoder(seed=1), x, 50)
        assert spikes[:, 0, 0].sum() == 0
        assert spikes[:, 0, 1].sum() == 50


class TestPhaseEncoder:
    def test_one_period_transmits_quantized_value(self):
        """The amplitudes of one period sum to the k-bit quantisation of x."""
        period = 8
        x = np.array([[0.3, 0.7, 0.5, 1.0, 0.0]])
        encoder = PhaseEncoder(v_th=1.0, period=period)
        values, _ = _run_encoder(encoder, x, period)
        per_period = values.sum(axis=0)[0]
        quantised = np.round(x[0] * 2**period) / 2**period
        quantised = np.clip(quantised, 0, 1 - 2.0**-period)
        assert np.allclose(per_period, quantised, atol=2.0**-period)

    def test_amplitudes_follow_oscillation(self):
        encoder = PhaseEncoder(v_th=1.0, period=4)
        values, spikes = _run_encoder(encoder, np.array([[0.9375]]), 4)  # 0.1111 in binary
        expected = [0.5, 0.25, 0.125, 0.0625]
        assert np.allclose(values[:, 0, 0], expected)
        assert spikes.all()

    def test_periodicity(self):
        encoder = PhaseEncoder(period=4)
        values, _ = _run_encoder(encoder, np.array([[0.6]]), 12)
        assert np.allclose(values[0:4], values[4:8])
        assert np.allclose(values[0:4], values[8:12])

    def test_throughput_factor(self):
        assert PhaseEncoder(period=8).throughput_factor == pytest.approx(1 / 8)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PhaseEncoder(period=0)
        with pytest.raises(ValueError):
            PhaseEncoder(period=40)


class TestBurstEncoder:
    def test_total_transmission_close_to_value(self):
        """Burst transmission tracks x·T up to the size of one in-flight burst."""
        x = np.array([[0.4, 0.8]])
        steps = 100
        values, _ = _run_encoder(BurstEncoder(v_th=0.125, beta=2.0), x, steps)
        totals = values.sum(axis=0)[0]
        assert np.allclose(totals, x[0] * steps, rtol=0.1)

    def test_bright_pixels_produce_bursts(self):
        _, spikes = _run_encoder(BurstEncoder(v_th=0.125), np.array([[1.0]]), 30)
        train = spikes[:, 0, 0]
        # at least one pair of consecutive spikes (a burst)
        assert np.any(train[1:] & train[:-1])


class TestMakeEncoder:
    @pytest.mark.parametrize(
        "coding,cls",
        [("real", RealEncoder), ("rate", RateEncoder), ("phase", PhaseEncoder), ("burst", BurstEncoder)],
    )
    def test_types(self, coding, cls):
        assert isinstance(make_encoder(coding), cls)

    def test_stochastic_rate(self):
        assert isinstance(make_encoder("rate", stochastic=True), PoissonRateEncoder)

    def test_custom_threshold(self):
        assert make_encoder("rate", v_th=0.5).v_th == 0.5

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_encoder("morse")
