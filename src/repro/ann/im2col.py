"""im2col / col2im utilities backing the Conv2D and pooling layers.

A convolution over a channel-first batch ``(N, C, H, W)`` is expressed as a
single matrix multiplication by unfolding every receptive field into a column.
The same unfolding is reused by the pooling layers and by the spiking
convolution layer in :mod:`repro.snn.layers`, which keeps the ANN forward pass
and the SNN per-time-step pass numerically identical for the same weights.

Two entry points are provided:

* :func:`im2col` — the one-shot form used by the ANN forward/backward passes
  (geometry recomputed and a fresh column matrix allocated per call);
* :class:`Im2colPlan` — the cached form used by the SNN engine, which unfolds
  the *same* geometry hundreds of times (once per simulation step).  The plan
  precomputes the output geometry and the strided-window view once, owns a
  reusable padded input buffer and column buffer, and each :meth:`fill` is a
  single strided copy with no allocations.  The column layout is identical to
  :func:`im2col`'s, so results are bit-for-bit the same.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding} gives non-positive output {out}"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    out_h, out_w:
        Spatial output dimensions.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"im2col expects (N, C, H, W), got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")

    # Strided sliding-window view: (N, C, out_h, out_w, kernel_h, kernel_w)
    stride_n, stride_c, stride_h, stride_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(stride_n, stride_c, stride_h * stride, stride_w * stride, stride_h, stride_w),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols), out_h, out_w


class Im2colPlan:
    """Cached im2col execution plan for a fixed unfold geometry.

    The SNN engine unfolds the same ``(N, C, H, W)`` geometry at every
    simulation step.  This plan computes the geometry once, owns

    * a reusable (padded) input buffer,
    * the strided sliding-window view over that buffer, and
    * a reusable column buffer laid out exactly like :func:`im2col`'s output,

    so that each :meth:`fill` call is two strided copies (input → padded
    buffer, window view → column buffer) with zero allocations.  Column
    values are bit-for-bit identical to ``im2col(x, ...)[0]``.

    Parameters
    ----------
    batch_size, channels, height, width:
        Input geometry (per step), batch dimension included.
    kernel_h, kernel_w, stride, padding:
        Unfold geometry, as in :func:`im2col`.
    dtype:
        dtype of the buffers (the simulation dtype of the owning layer).
    """

    def __init__(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        dtype: "np.dtype | type" = np.float64,
    ) -> None:
        if batch_size <= 0 or channels <= 0 or height <= 0 or width <= 0:
            raise ValueError(
                f"invalid input geometry ({batch_size}, {channels}, {height}, {width})"
            )
        self.input_shape = (batch_size, channels, height, width)
        self.kernel_h = int(kernel_h)
        self.kernel_w = int(kernel_w)
        self.stride = int(stride)
        self.padding = int(padding)
        self.dtype = np.dtype(dtype)
        self.out_h = conv_output_size(height, kernel_h, stride, padding)
        self.out_w = conv_output_size(width, kernel_w, stride, padding)

        n, c = batch_size, channels
        padded_h = height + 2 * padding
        padded_w = width + 2 * padding
        # Padded input buffer; the zero border is written once and never
        # touched again (fill() only overwrites the interior).
        self._padded = np.zeros((n, c, padded_h, padded_w), dtype=self.dtype)
        if padding > 0:
            self._interior = self._padded[
                :, :, padding : padding + height, padding : padding + width
            ]
        else:
            self._interior = self._padded

        stride_n, stride_c, stride_h, stride_w = self._padded.strides
        windows = np.lib.stride_tricks.as_strided(
            self._padded,
            shape=(n, c, self.out_h, self.out_w, self.kernel_h, self.kernel_w),
            strides=(
                stride_n,
                stride_c,
                stride_h * self.stride,
                stride_w * self.stride,
                stride_h,
                stride_w,
            ),
            writeable=False,
        )
        # Source view in the column ordering (N, out_h, out_w, C, kh, kw); the
        # destination buffer is C-contiguous so its 2-D reshape is a free view.
        self._windows = windows.transpose(0, 2, 3, 1, 4, 5)
        self._cols6 = np.empty(
            (n, self.out_h, self.out_w, c, self.kernel_h, self.kernel_w), dtype=self.dtype
        )
        self.cols = self._cols6.reshape(
            n * self.out_h * self.out_w, c * self.kernel_h * self.kernel_w
        )
        # Copy strategy: one 6-D strided copy, or one 4-D copy per kernel
        # position.  The 6-D iterator wins only for very small channel counts;
        # per-position slabs win everywhere else (and always for pooling,
        # where stride == kernel).  Values are identical either way.
        self._use_slabs = c >= 4 or self.kernel_h * self.kernel_w <= 4
        self._slab_pairs = []
        for ky in range(self.kernel_h):
            for kx in range(self.kernel_w):
                src = self._padded[
                    :,
                    :,
                    ky : ky + self.out_h * self.stride : self.stride,
                    kx : kx + self.out_w * self.stride : self.stride,
                ].transpose(0, 2, 3, 1)
                self._slab_pairs.append((self._cols6[:, :, :, :, ky, kx], src))

    @property
    def num_rows(self) -> int:
        n = self.input_shape[0]
        return n * self.out_h * self.out_w

    def fill(self, x: np.ndarray) -> np.ndarray:
        """Unfold ``x`` into the plan's column buffer and return it.

        The returned array is the plan's reusable buffer: it is overwritten by
        the next ``fill`` call.
        """
        if x.shape != self.input_shape:
            raise ValueError(
                f"im2col plan built for input shape {self.input_shape}, got {x.shape}"
            )
        self._interior[...] = x
        if self._use_slabs:
            for dst, src in self._slab_pairs:
                np.copyto(dst, src)
        else:
            np.copyto(self._cols6, self._windows)
        return self.cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back to an image batch, accumulating overlapping regions.

    This is the adjoint of :func:`im2col` and is used by the convolution and
    pooling backward passes.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded_h = h + 2 * padding
    padded_w = w + 2 * padding

    cols_reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, padded_h, padded_w), dtype=np.float64)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            x_padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols_reshaped[:, :, ky, kx, :, :]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded
