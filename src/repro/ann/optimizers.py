"""Gradient-descent optimizers for the numpy ANN framework."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ann.layers import Layer


class Optimizer:
    """Base optimizer updating the parameters of a list of layers in place."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, layers: List[Layer]) -> None:
        """Apply one update using the gradients stored on each layer."""
        for index, layer in enumerate(layers):
            if not layer.trainable or not layer.params:
                continue
            for key, param in layer.params.items():
                grad = layer.grads.get(key)
                if grad is None:
                    continue
                self._update_param(f"{index}.{layer.name}.{key}", param, grad)

    def _update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def _update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        if self.momentum:
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[key] = velocity
            param += velocity
        else:
            param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, layers: List[Layer]) -> None:
        self._t += 1
        super().step(layers)

    def _update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad**2
        self._m[key] = m
        self._v[key] = v
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
