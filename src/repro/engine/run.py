"""Run stage: the time-stepped simulation loop and shard orchestration.

This module owns everything that happens *per step* — encoder stepping,
layer propagation with sparsity hints, spike recording, output snapshots and
the converged-image early exit — plus the process-level fan-out used for
sharded evaluation.  The build and plan stages
(:mod:`repro.engine.build` / :mod:`repro.engine.plan`) feed it;
``SpikingNetwork.run`` and the pipeline delegate here, so there is exactly
one step loop in the code base.

In float64 the loop is bit-identical to the original seed engine (golden
reference ``benchmarks/perf/seed_reference.json``); the float32 default runs
the measured-activity sparse kernels within the documented tolerance.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.engine.plan import PreparedBatch, block_schedule, plan_simulation
from repro.snn.network import SimulationConfig, SimulationResult, SpikingNetwork
from repro.utils.logging import get_logger

logger = get_logger("engine.run")

T = TypeVar("T")


def execute(prepared: PreparedBatch, labels: Optional[np.ndarray] = None) -> SimulationResult:
    """Run the step loop over a prepared batch and collect the result.

    ``prepared`` is consumed: the encoder/layer state it bound is advanced by
    the loop, so prepare a fresh batch (``plan.prepare``) for the next run.

    When the plan compiled a whole-network block program
    (:meth:`~repro.backends.base.KernelBackend.compile_network_program`),
    the loop is driven at block granularity by :func:`_execute_blocks` —
    bit-identical to the per-step loop below, which remains the reference
    (and the only) path for primitives-only backends.
    """
    if prepared.network_program is not None:
        return _execute_blocks(prepared, labels)
    plan = prepared.plan
    network = plan.network
    config = plan.config
    dtype = plan.dtype
    batch_size = prepared.batch_size
    record = prepared.record
    input_record = prepared.input_record
    layer_records = prepared.layer_records
    encoder = network.encoder
    layers = network.layers
    output_layer = network.output_layer

    # Snapshot steps are known from the plan, so the output history is one
    # preallocated block filled in place instead of a stack of copies.
    recorded_steps = plan.recorded_steps
    output_history = np.empty(
        (len(recorded_steps), batch_size, network.num_classes), dtype=dtype
    )
    snapshot = 0
    patience = config.early_exit_patience
    # Adaptive early exit: with a margin threshold configured, an image only
    # freezes when its per-step output margin — (top1 − top2 accumulated
    # score) / steps simulated — stays at or above the threshold throughout
    # the whole patience window, on top of the argmax being stable.  With
    # margin=None the loop below is exactly the fixed-count criterion.
    margin = config.early_exit_margin
    # Early-exit bookkeeping: `active` maps the (shrinking) simulated batch
    # back to the original image indices.
    active = np.arange(batch_size)
    latest_logits: Optional[np.ndarray] = None
    prev_pred = stable = frozen_at = None
    margin_scratch = None
    if patience is not None:
        latest_logits = np.zeros((batch_size, network.num_classes), dtype=dtype)
        prev_pred = np.full(batch_size, -1, dtype=np.int64)
        stable = np.zeros(batch_size, dtype=np.int64)
        frozen_at = np.full(batch_size, -1, dtype=np.int64)
        if margin is not None and network.num_classes >= 2:
            # top-two extraction works on this preallocated copy (sliced to
            # the surviving rows), keeping the step loop allocation-free
            margin_scratch = np.empty((batch_size, network.num_classes), dtype=dtype)

    # an encoder whose values are nonzero exactly where it spiked lets the
    # first layer (and the pools downstream) skip activity re-scans
    encoder_tracks_spikes = getattr(encoder, "values_nonzero_tracks_spikes", False)
    # resolve each layer's compiled step program outside the timed loop (one
    # program call per layer per step; refreshed after any mid-run shrink)
    programs = [layer.ensure_step_program() for layer in layers]
    for t in range(config.time_steps):
        encoded = encoder.step(t)
        batch_indices = active if patience is not None else None
        input_spikes = encoded.spike_count
        input_record.record_step(
            encoded.spikes,
            config.record_trains,
            batch_indices=batch_indices,
            count=input_spikes,
        )
        values = encoded.values
        nonzero_hint = input_spikes if encoder_tracks_spikes else None
        for layer, program, layer_record in zip(layers, programs, layer_records):
            layer.output_nonzero = None
            values = program.run(values, t, nonzero_hint)
            nonzero_hint = layer.output_nonzero
            layer_record.record_step(
                layer.last_spikes if layer.is_spiking else None,
                config.record_trains,
                batch_indices=batch_indices,
                count=layer.output_nonzero if layer.is_spiking else None,
            )
        record.advance()
        if patience is None:
            if snapshot < len(recorded_steps) and t + 1 == recorded_steps[snapshot]:
                np.copyto(output_history[snapshot], output_layer.logits)
                snapshot += 1
            continue

        logits = output_layer.logits
        latest_logits[active] = logits
        if snapshot < len(recorded_steps) and t + 1 == recorded_steps[snapshot]:
            np.copyto(output_history[snapshot], latest_logits)
            snapshot += 1
        predictions = logits.argmax(axis=1)
        unchanged = predictions == prev_pred[active]
        if margin is None:
            stable[active] = np.where(unchanged, stable[active] + 1, 1)
        else:
            if margin_scratch is not None:
                # the two largest accumulated scores per image, via an
                # in-place partition of the preallocated scratch (no sort)
                scratch = margin_scratch[: logits.shape[0]]
                np.copyto(scratch, logits)
                scratch.partition(logits.shape[1] - 2, axis=1)
                confident = (scratch[:, -1] - scratch[:, -2]) / (t + 1) >= margin
                qualifies = unchanged & confident
            else:
                qualifies = unchanged  # a 1-class output has no margin
            # unlike the pure argmax criterion (where the step after a flip is
            # already 1 step of the *new* prediction's stability), a step that
            # misses the margin contributes nothing to the confident streak
            stable[active] = np.where(qualifies, stable[active] + 1, 0)
        prev_pred[active] = predictions
        frozen = stable[active] >= patience
        if frozen.any() and t + 1 < config.time_steps:
            frozen_at[active[frozen]] = t + 1
            keep = np.flatnonzero(~frozen)
            if keep.size == 0:
                # every image converged: repeat the converged scores for the
                # remaining recorded steps and stop simulating
                while snapshot < len(recorded_steps):
                    np.copyto(output_history[snapshot], latest_logits)
                    snapshot += 1
                break
            encoder.shrink_batch(keep)
            for layer in layers:
                layer.shrink_batch(keep)
            # shrinking reallocates the per-batch buffers compiled programs
            # capture — recompile before the next step touches stale views
            programs = [layer.ensure_step_program() for layer in layers]
            active = active[keep]

    return SimulationResult(
        output_history=output_history,
        recorded_steps=np.asarray(recorded_steps, dtype=np.int64),
        record=record,
        time_steps=config.time_steps,
        batch_size=batch_size,
        num_neurons=network.num_neurons(),
        labels=None if labels is None else np.asarray(labels),
        frozen_at=frozen_at,
    )


def _execute_blocks(
    prepared: PreparedBatch, labels: Optional[np.ndarray] = None
) -> SimulationResult:
    """Block-granular drive of a compiled whole-network step program.

    The program runs the encoder, every layer program, spike recording and
    (early exit off) the output snapshots for a whole block of consecutive
    steps per call — :func:`repro.engine.plan.block_schedule` derives the
    blocks from the plan.  With early exit on every block is a single step,
    so this loop observes the logits and applies exactly the freeze
    bookkeeping of the per-step path; results are bit-identical to
    :func:`execute`'s reference loop in every dtype.
    """
    plan = prepared.plan
    network = plan.network
    config = plan.config
    dtype = plan.dtype
    batch_size = prepared.batch_size
    record = prepared.record
    encoder = network.encoder
    layers = network.layers
    output_layer = network.output_layer
    program = prepared.network_program

    recorded_steps = plan.recorded_steps
    output_history = np.empty(
        (len(recorded_steps), batch_size, network.num_classes), dtype=dtype
    )
    snapshot = 0
    patience = config.early_exit_patience
    margin = config.early_exit_margin
    frozen_at = None

    if patience is None:
        # nothing interrupts the horizon: each inter-snapshot span runs in
        # one seam crossing (a single whole-run block by default — the
        # program fills the snapshots itself)
        for t0, n in block_schedule(config):
            snapshot = program.run_block(
                t0, n, output_history=output_history, snapshot=snapshot
            )
    else:
        # converged-image early exit: single-step blocks, with the exact
        # logits observation / freeze bookkeeping of the per-step loop
        active = np.arange(batch_size)
        latest_logits = np.zeros((batch_size, network.num_classes), dtype=dtype)
        prev_pred = np.full(batch_size, -1, dtype=np.int64)
        stable = np.zeros(batch_size, dtype=np.int64)
        frozen_at = np.full(batch_size, -1, dtype=np.int64)
        margin_scratch = None
        if margin is not None and network.num_classes >= 2:
            margin_scratch = np.empty((batch_size, network.num_classes), dtype=dtype)
        for t in range(config.time_steps):
            program.run_block(t, 1, batch_indices=active)
            logits = output_layer.logits
            latest_logits[active] = logits
            if snapshot < len(recorded_steps) and t + 1 == recorded_steps[snapshot]:
                np.copyto(output_history[snapshot], latest_logits)
                snapshot += 1
            predictions = logits.argmax(axis=1)
            unchanged = predictions == prev_pred[active]
            if margin is None:
                stable[active] = np.where(unchanged, stable[active] + 1, 1)
            else:
                if margin_scratch is not None:
                    scratch = margin_scratch[: logits.shape[0]]
                    np.copyto(scratch, logits)
                    scratch.partition(logits.shape[1] - 2, axis=1)
                    confident = (scratch[:, -1] - scratch[:, -2]) / (t + 1) >= margin
                    qualifies = unchanged & confident
                else:
                    qualifies = unchanged  # a 1-class output has no margin
                stable[active] = np.where(qualifies, stable[active] + 1, 0)
            prev_pred[active] = predictions
            frozen = stable[active] >= patience
            if frozen.any() and t + 1 < config.time_steps:
                frozen_at[active[frozen]] = t + 1
                keep = np.flatnonzero(~frozen)
                if keep.size == 0:
                    while snapshot < len(recorded_steps):
                        np.copyto(output_history[snapshot], latest_logits)
                        snapshot += 1
                    break
                encoder.shrink_batch(keep)
                for layer in layers:
                    layer.shrink_batch(keep)
                # shrinking reallocates the per-batch buffers the compiled
                # programs capture — refresh the layer programs, then the
                # network program composed over them
                for layer in layers:
                    layer.ensure_step_program()
                prepared.recompile_network_program()
                program = prepared.network_program
                active = active[keep]

    return SimulationResult(
        output_history=output_history,
        recorded_steps=np.asarray(recorded_steps, dtype=np.int64),
        record=record,
        time_steps=config.time_steps,
        batch_size=batch_size,
        num_neurons=network.num_neurons(),
        labels=None if labels is None else np.asarray(labels),
        frozen_at=frozen_at,
    )


def simulate(
    network: SpikingNetwork,
    x: np.ndarray,
    config: Optional[SimulationConfig] = None,
    labels: Optional[np.ndarray] = None,
) -> SimulationResult:
    """One-shot convenience: plan, prepare and execute a single batch.

    ``SpikingNetwork.run`` delegates here; callers serving many batches
    should hold an :class:`~repro.engine.session.InferenceSession` instead,
    which reuses the plan across requests.
    """
    plan = plan_simulation(network, config)
    return execute(plan.prepare(x), labels=labels)


# -- shard orchestration -----------------------------------------------------

def resolve_worker_count(requested: Optional[int], num_batches: int, log=None) -> int:
    """Effective worker count, guarding the shard path on 1-CPU machines.

    ``log`` is the caller's logger for the fallback note (``None`` uses this
    module's); ``REPRO_FORCE_SHARDING=1`` overrides the single-CPU guard.
    """
    if not requested or requested <= 1 or num_batches <= 1:
        return 1
    cpus = os.cpu_count() or 1
    if cpus <= 1 and not os.environ.get("REPRO_FORCE_SHARDING"):
        (log or logger).info(
            "num_workers=%d requested, but this machine has a single CPU; "
            "running the shards in-process instead of spawning workers",
            requested,
        )
        return 1
    return min(requested, num_batches, max(cpus, 2))


def shard_ranges(num_images: int, batch_size: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``num_images`` into ``workers`` contiguous whole-batch shards."""
    num_batches = -(-num_images // batch_size)
    per_shard = -(-num_batches // workers)
    ranges = []
    for first_batch in range(0, num_batches, per_shard):
        start = first_batch * batch_size
        stop = min((first_batch + per_shard) * batch_size, num_images)
        ranges.append((start, stop))
    return ranges


def _sharded_entry(
    worker: Callable[[int, int], T],
    start: int,
    stop: int,
    calibration_caches: Optional[Tuple[dict, dict]],
) -> T:
    """Worker-process entry point: install the parent's kernel calibrations
    (sparse/dense crossovers and direct-conv engine choices) so every worker
    dispatches to the same kernels the parent would, then run the shard."""
    if calibration_caches is not None:
        from repro.ann.im2col import install_direct_engine_cache
        from repro.utils.sparsity import install_calibration_cache

        install_calibration_cache(calibration_caches[0])
        install_direct_engine_cache(calibration_caches[1])
    return worker(start, stop)


def run_sharded(
    worker: Callable[[int, int], T],
    ranges: Sequence[Tuple[int, int]],
    workers: int,
) -> List[T]:
    """Fan shard ranges out to worker processes and collect them in order.

    ``worker`` must be picklable (e.g. a bound method of a picklable object,
    or a :func:`functools.partial` over one) and is called as
    ``worker(start, stop)`` inside each process.  The parent's process-wide
    kernel calibrations are snapshotted here and shipped to every worker, so
    results merge deterministically regardless of per-worker timing probes.
    """
    import concurrent.futures
    import multiprocessing

    from repro.ann.im2col import direct_engine_cache_snapshot
    from repro.utils.sparsity import calibration_cache_snapshot

    # the platform-default start method is deliberate: forcing fork on
    # platforms that default to spawn (macOS) is unsafe after the parent has
    # run BLAS work; the calibration snapshot keeps spawned workers' kernel
    # choices identical to the parent's either way
    context = multiprocessing.get_context()
    caches = (calibration_cache_snapshot(), direct_engine_cache_snapshot())
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        futures = [
            pool.submit(_sharded_entry, worker, start, stop, caches)
            for start, stop in ranges
        ]
        return [future.result() for future in futures]
