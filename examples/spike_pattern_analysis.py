#!/usr/bin/env python
"""Spike-pattern analysis of the different neural codings (Fig. 1 and Fig. 5).

Part 1 reproduces Fig. 1 on a single neuron: the same constant input is
encoded with rate, phase and burst coding, and the script prints the spike
count, the transmitted amplitude range and the head of the ISI histogram for
each — showing the ISI-1 peak and growing amplitudes that characterise bursts.

Part 2 reproduces Fig. 5 on a converted network: for a few coding
combinations it records sampled spike trains, computes the firing rate
(Eq. 11) and firing regularity (Eq. 12) of each neuron and prints the
population averages — showing that phase hidden coding always fires fast
(inflexible) while burst hidden coding adapts to the input coding.

Run with:  python examples/spike_pattern_analysis.py
Runtime:   ~30 seconds.
"""

from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.core.hybrid import HybridCodingScheme
from repro.experiments.workloads import mnist_workload


def main() -> None:
    print("Part 1 — single-neuron spike patterns (Fig. 1)")
    traces = run_fig1(drive=0.3, time_steps=400, burst_v_th=0.125)
    print(format_fig1(traces))
    burst = traces["burst"]
    amplitudes = burst.amplitudes[burst.spike_train]
    print(
        f"  burst amplitudes grow within a burst: "
        f"{amplitudes.min():.3f} -> {amplitudes.max():.3f} "
        f"(effective weight potentiation, Eq. 10)\n"
    )

    print("Part 2 — firing rate vs regularity on a converted CNN (Fig. 5)")
    workload = mnist_workload()
    schemes = [
        HybridCodingScheme.from_notation(notation)
        for notation in ("real-rate", "real-phase", "real-burst", "phase-phase", "phase-burst")
    ]
    points = run_fig5(workload=workload, schemes=schemes, time_steps=120, num_images=6)
    print(format_fig5(points))
    print(
        "\nReading the table: the phase-coded hidden layers sit at the highest "
        "firing rates regardless of the input coding, while burst coding's "
        "firing statistics move with the input coding — the flexibility "
        "argument of Section 5."
    )


if __name__ == "__main__":
    main()
