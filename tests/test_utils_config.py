"""Tests for repro.utils.config."""

from dataclasses import dataclass

import pytest

from repro.utils.config import (
    FrozenConfig,
    validate_in,
    validate_positive,
    validate_probability,
)


@dataclass(frozen=True)
class _ExampleConfig(FrozenConfig):
    alpha: float = 1.0
    steps: int = 10


class TestFrozenConfig:
    def test_to_dict(self):
        cfg = _ExampleConfig(alpha=2.0)
        assert cfg.to_dict() == {"alpha": 2.0, "steps": 10}

    def test_replace_returns_new_instance(self):
        cfg = _ExampleConfig()
        other = cfg.replace(steps=20)
        assert other.steps == 20
        assert cfg.steps == 10

    def test_describe_contains_fields(self):
        text = _ExampleConfig().describe()
        assert "alpha" in text and "steps" in text

    def test_replace_on_non_dataclass_raises(self):
        class Plain(FrozenConfig):
            pass

        with pytest.raises(TypeError):
            Plain().replace(x=1)


class TestValidators:
    def test_validate_positive_accepts_positive(self):
        validate_positive("x", 0.5)

    def test_validate_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            validate_positive("x", 0)

    def test_validate_positive_allows_zero_when_asked(self):
        validate_positive("x", 0, allow_zero=True)

    def test_validate_positive_rejects_negative_even_with_zero_allowed(self):
        with pytest.raises(ValueError):
            validate_positive("x", -1, allow_zero=True)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_validate_probability_accepts(self, value):
        validate_probability("p", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_validate_probability_rejects(self, value):
        with pytest.raises(ValueError):
            validate_probability("p", value)

    def test_validate_in_accepts_member(self):
        validate_in("mode", "a", ("a", "b"))

    def test_validate_in_rejects_non_member(self):
        with pytest.raises(ValueError):
            validate_in("mode", "c", ("a", "b"))
