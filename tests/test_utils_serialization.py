"""Tests for saving / loading model weights (repro.utils.serialization)."""

import numpy as np
import pytest

from repro.models.mlp import build_mlp
from repro.models.cnn import build_small_cnn
from repro.utils.serialization import (
    arrays_to_weights,
    load_model_weights,
    save_model_weights,
    weights_to_arrays,
)


class TestWeightFlattening:
    def test_roundtrip(self):
        weights = [{"weight": np.arange(6).reshape(2, 3), "bias": np.zeros(3)}, {}, {"weight": np.ones((3, 1))}]
        arrays = weights_to_arrays(weights)
        rebuilt = arrays_to_weights(arrays, num_layers=3)
        assert np.array_equal(rebuilt[0]["weight"], weights[0]["weight"])
        assert np.array_equal(rebuilt[0]["bias"], weights[0]["bias"])
        assert rebuilt[1] == {}
        assert np.array_equal(rebuilt[2]["weight"], weights[2]["weight"])

    def test_bad_layer_index(self):
        with pytest.raises(ValueError):
            arrays_to_weights({"5::weight": np.zeros(2)}, num_layers=2)

    def test_malformed_key(self):
        with pytest.raises(ValueError):
            arrays_to_weights({"nonsense": np.zeros(2)}, num_layers=1)


class TestSaveLoadModel:
    def test_mlp_roundtrip(self, tmp_path):
        model = build_mlp((1, 8, 8), [16], 4, seed=0)
        x = np.random.default_rng(0).uniform(size=(5, 1, 8, 8))
        before = model.predict_scores(x)

        path = save_model_weights(model, tmp_path / "mlp_weights")
        assert path.exists()

        fresh = build_mlp((1, 8, 8), [16], 4, seed=99)  # different init
        assert not np.allclose(fresh.predict_scores(x), before)
        load_model_weights(fresh, path)
        assert np.allclose(fresh.predict_scores(x), before)

    def test_cnn_roundtrip(self, tmp_path):
        model = build_small_cnn((3, 10, 10), 3, seed=1)
        x = np.random.default_rng(1).uniform(size=(3, 3, 10, 10))
        before = model.predict_scores(x)
        path = save_model_weights(model, tmp_path / "cnn.npz")
        fresh = build_small_cnn((3, 10, 10), 3, seed=7)
        load_model_weights(fresh, path)
        assert np.allclose(fresh.predict_scores(x), before)

    def test_load_without_npz_suffix(self, tmp_path):
        model = build_mlp((4,), [4], 2, seed=0)
        save_model_weights(model, tmp_path / "weights")
        fresh = build_mlp((4,), [4], 2, seed=3)
        load_model_weights(fresh, tmp_path / "weights")

    def test_architecture_mismatch_rejected(self, tmp_path):
        model = build_mlp((4,), [4], 2, seed=0)
        path = save_model_weights(model, tmp_path / "w.npz")
        other = build_mlp((4,), [4, 4], 2, seed=0)
        with pytest.raises(ValueError):
            load_model_weights(other, path)

    def test_strict_name_check(self, tmp_path):
        model = build_mlp((4,), [4], 2, seed=0, name="alpha")
        path = save_model_weights(model, tmp_path / "w.npz")
        same_arch = build_mlp((4,), [4], 2, seed=1, name="beta")
        with pytest.raises(ValueError):
            load_model_weights(same_arch, path, strict_name=True)
        # non-strict load succeeds
        load_model_weights(same_arch, path)

    def test_not_an_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez_compressed(bogus, something=np.zeros(3))
        model = build_mlp((4,), [4], 2, seed=0)
        with pytest.raises(ValueError):
            load_model_weights(model, bogus)

    def test_creates_parent_directories(self, tmp_path):
        model = build_mlp((4,), [4], 2, seed=0)
        path = save_model_weights(model, tmp_path / "nested" / "dir" / "w.npz")
        assert path.exists()
