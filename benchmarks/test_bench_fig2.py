"""Benchmark regenerating Fig. 2: percentage of burst spikes (and their
composition by burst length) as the burst threshold v_th is swept over
{0.5, 0.25, 0.125, 0.0625, 0.03125}.

Paper shape to reproduce: the burst fraction grows monotonically as v_th
decreases, and longer bursts appear at the smaller thresholds.
"""

from repro.experiments.fig2 import FIG2_V_TH_VALUES, format_fig2, run_fig2


def test_bench_fig2(benchmark, save_result, mnist_cnn_workload):
    points = benchmark.pedantic(
        lambda: run_fig2(
            workload=mnist_cnn_workload,
            v_th_values=FIG2_V_TH_VALUES,
            time_steps=100,
            num_images=8,
            input_coding="phase",
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig2_burst_composition", format_fig2(points))

    fractions = [point.statistics.burst_fraction for point in points]
    # burst fraction increases as v_th decreases (the sweep is ordered 0.5 -> 0.03125)
    assert fractions[-1] > fractions[0]
    assert all(later >= earlier - 0.02 for earlier, later in zip(fractions, fractions[1:]))
    # longer bursts appear at the smallest threshold
    assert points[-1].statistics.composition["3"] > 0.0
