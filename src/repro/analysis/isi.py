"""Inter-spike-interval (ISI) analysis.

The ISI histogram (ISIH) is the paper's tool for verifying that the proposed
threshold adaptation really produces *bursts*: a burst is a group of
short-ISI spikes, so burst coding should shift probability mass towards ISI=1
(Fig. 1-C3) relative to rate coding (Fig. 1-C1).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _validate_trains(trains: np.ndarray) -> np.ndarray:
    trains = np.asarray(trains)
    if trains.ndim == 1:
        trains = trains[:, None]
    if trains.ndim != 2:
        raise ValueError(
            f"spike trains must have shape (T,) or (T, neurons), got {trains.shape}"
        )
    return trains.astype(bool)


def isi_per_neuron(trains: np.ndarray) -> List[np.ndarray]:
    """Inter-spike intervals of each neuron.

    Parameters
    ----------
    trains:
        Boolean array of shape ``(T, neurons)`` (or ``(T,)`` for one neuron).

    Returns
    -------
    list of arrays, one per neuron, each holding that neuron's ISIs in time
    order (length ``spike_count - 1``; empty if the neuron spiked < 2 times).
    """
    trains = _validate_trains(trains)
    intervals: List[np.ndarray] = []
    for neuron in range(trains.shape[1]):
        times = np.flatnonzero(trains[:, neuron])
        if times.size >= 2:
            intervals.append(np.diff(times))
        else:
            intervals.append(np.zeros(0, dtype=np.int64))
    return intervals


def inter_spike_intervals(trains: np.ndarray) -> np.ndarray:
    """All ISIs pooled over the neurons of ``trains`` (shape ``(T, neurons)``)."""
    per_neuron = isi_per_neuron(trains)
    if not per_neuron:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(per_neuron) if any(a.size for a in per_neuron) else np.zeros(0, dtype=np.int64)


def isi_histogram(trains: np.ndarray, max_isi: int = 50) -> Tuple[np.ndarray, np.ndarray]:
    """ISI histogram as plotted in Fig. 1 (C1–C3).

    Parameters
    ----------
    trains:
        Boolean spike trains of shape ``(T, neurons)``.
    max_isi:
        Largest ISI bin; longer intervals are accumulated into the last bin.

    Returns
    -------
    bins:
        ISI values ``1 … max_isi``.
    counts:
        Number of intervals falling in each bin.
    """
    if max_isi <= 0:
        raise ValueError(f"max_isi must be positive, got {max_isi}")
    intervals = inter_spike_intervals(trains)
    bins = np.arange(1, max_isi + 1)
    counts = np.zeros(max_isi, dtype=np.int64)
    if intervals.size:
        clipped = np.clip(intervals, 1, max_isi)
        counts = np.bincount(clipped, minlength=max_isi + 1)[1 : max_isi + 1]
    return bins, counts


def short_isi_fraction(trains: np.ndarray, short_threshold: int = 2) -> float:
    """Fraction of ISIs that are "short" (≤ ``short_threshold`` steps).

    Burst coding increases this fraction markedly; the paper uses it to argue
    that the adaptive threshold produces genuine bursts.
    """
    if short_threshold <= 0:
        raise ValueError(f"short_threshold must be positive, got {short_threshold}")
    intervals = inter_spike_intervals(trains)
    if intervals.size == 0:
        return 0.0
    return float(np.mean(intervals <= short_threshold))
